/// Autotuner tests (docs/TUNING.md): Pareto-dominance property battery
/// (strict partial order, minimal insertion-order-invariant fronts), the
/// seeded low-discrepancy sampler, the knob space and objective-set
/// parsers, the trial-ledger codec and its torn-line/config-guard
/// robustness, and the tuner's determinism contract — bit-identical trial
/// schedules and fronts across jobs values and across a kill + resume.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "techmap/lutcircuit.h"
#include "tune/knobs.h"
#include "tune/ledger.h"
#include "tune/pareto.h"
#include "tune/sampler.h"
#include "tune/tuner.h"

// The shared mode-pair recipe (same as test_batch/test_robustness).
#include "aig/bridge.h"
#include "netlist/netlist.h"
#include "techmap/mapper.h"

namespace mmflow {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;

  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("mmflow_tune_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::vector<techmap::LutCircuit> similar_mode_pair(int num_gates,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  auto build = [&](bool variant, std::uint64_t vseed) {
    Rng vrng(vseed);
    netlist::Netlist nl(variant ? "modeB" : "modeA");
    std::vector<netlist::SignalId> pool;
    for (int i = 0; i < 6; ++i) {
      pool.push_back(nl.add_input("i" + std::to_string(i)));
    }
    Rng shared(seed * 7919);
    for (int g = 0; g < num_gates; ++g) {
      Rng& r = (g < num_gates * 3 / 4) ? shared : vrng;
      const auto a = pool[r.next_below(pool.size())];
      const auto b = pool[r.next_below(pool.size())];
      netlist::SignalId s = 0;
      switch (r.next_below(4)) {
        case 0: s = nl.add_and(a, b); break;
        case 1: s = nl.add_or(a, b); break;
        case 2: s = nl.add_xor(a, b); break;
        case 3: s = nl.add_nand(a, b); break;
      }
      pool.push_back(s);
    }
    for (int i = 0; i < 4; ++i) {
      nl.add_output("o" + std::to_string(i), pool[pool.size() - 1 - i]);
    }
    auto mapped = techmap::map_to_luts(aig::aig_from_netlist(nl));
    mapped.set_name(nl.name());
    return mapped;
  };
  std::vector<techmap::LutCircuit> modes;
  modes.push_back(build(false, rng()));
  modes.push_back(build(true, rng()));
  return modes;
}

/// A cheap tune setup: tiny mode pair, fast flow, and a knob space that
/// does not touch the annealing effort (so every trial stays quick).
std::vector<tune::TuneBenchmark> tiny_benchmarks(std::uint64_t seed) {
  return {tune::TuneBenchmark{
      "tiny", std::make_shared<const std::vector<techmap::LutCircuit>>(
                  similar_mode_pair(40, seed))}};
}

tune::TuneOptions fast_tune_options() {
  tune::TuneOptions options;
  options.seed = 5;
  options.budget = 4;
  options.base.anneal.inner_num = 2.0;
  options.space = tune::KnobSpace::from_spec(
      "astar_fac=1.0:1.6,align_discount=0.1:1.0", "test");
  return options;
}

/// Everything the determinism contract covers: schedule identity plus
/// bit-identical knob values and objectives. wall_ms and from_ledger are
/// explicitly exempt.
void expect_same_trials(const std::vector<tune::TuneTrial>& a,
                        const std::vector<tune::TuneTrial>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << "trial " << i;
    EXPECT_EQ(a[i].rung, b[i].rung) << "trial " << i;
    EXPECT_EQ(a[i].ok, b[i].ok) << "trial " << i;
    EXPECT_EQ(a[i].knob_values, b[i].knob_values) << "trial " << i;
    EXPECT_EQ(a[i].objectives, b[i].objectives) << "trial " << i;
  }
}

// ------------------------------------------------ dominance & Pareto set --

/// Random objective vector with coordinates drawn from a small grid, so
/// ties and dominance both occur often.
std::vector<double> random_point(Rng& rng, std::size_t dims) {
  std::vector<double> point(dims);
  for (double& v : point) v = static_cast<double>(rng.next_below(8));
  return point;
}

TEST(Pareto, DominanceIsAStrictPartialOrder) {
  Rng rng(123);
  for (int dims = 1; dims <= 4; ++dims) {
    for (int iteration = 0; iteration < 400; ++iteration) {
      const auto a = random_point(rng, dims);
      const auto b = random_point(rng, dims);
      const auto c = random_point(rng, dims);
      // Irreflexive.
      EXPECT_FALSE(tune::dominates(a, a));
      // Asymmetric.
      EXPECT_FALSE(tune::dominates(a, b) && tune::dominates(b, a));
      // Transitive.
      if (tune::dominates(a, b) && tune::dominates(b, c)) {
        EXPECT_TRUE(tune::dominates(a, c));
      }
    }
  }
}

TEST(Pareto, FrontIsMinimalAndComplete) {
  Rng rng(321);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const std::size_t dims = 2 + rng.next_below(3);
    std::vector<tune::ParetoPoint> inserted;
    tune::ParetoSet set(dims);
    for (std::uint64_t tag = 0; tag < 24; ++tag) {
      tune::ParetoPoint point{random_point(rng, dims), tag};
      inserted.push_back(point);
      set.add(std::move(point));
    }
    const auto front = set.points();
    ASSERT_FALSE(front.empty());
    // Minimal: no member dominates (or equals) another.
    for (const auto& a : front) {
      for (const auto& b : front) {
        if (a.tag == b.tag) continue;
        EXPECT_FALSE(tune::dominates(a.objectives, b.objectives));
        EXPECT_NE(a.objectives, b.objectives);
      }
    }
    // Complete: every insertion is dominated by or equal to a member.
    for (const auto& point : inserted) {
      const bool covered = std::any_of(
          front.begin(), front.end(), [&point](const tune::ParetoPoint& m) {
            return m.objectives == point.objectives ||
                   tune::dominates(m.objectives, point.objectives);
          });
      EXPECT_TRUE(covered);
    }
  }
}

TEST(Pareto, FrontIsInsertionOrderInvariant) {
  Rng rng(55);
  for (int iteration = 0; iteration < 100; ++iteration) {
    const std::size_t dims = 2 + rng.next_below(3);
    std::vector<tune::ParetoPoint> points;
    for (std::uint64_t tag = 0; tag < 16; ++tag) {
      points.push_back({random_point(rng, dims), tag});
    }
    tune::ParetoSet forward(dims);
    for (const auto& p : points) forward.add(p);

    // A seeded shuffle (Fisher-Yates on a copy).
    std::vector<tune::ParetoPoint> shuffled = points;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    }
    tune::ParetoSet backward(dims);
    for (const auto& p : shuffled) backward.add(p);

    const auto a = forward.points();
    const auto b = backward.points();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].tag, b[i].tag);
      EXPECT_EQ(a[i].objectives, b[i].objectives);
    }
  }
}

TEST(Pareto, EqualVectorsKeepTheLowestTag) {
  tune::ParetoSet set(2);
  EXPECT_TRUE(set.add({{1.0, 2.0}, 7}));
  EXPECT_FALSE(set.add({{1.0, 2.0}, 9}));  // higher tag loses
  EXPECT_TRUE(set.add({{1.0, 2.0}, 3}));   // lower tag takes over
  const auto front = set.points();
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].tag, 3u);
}

TEST(Pareto, RejectsNonFiniteObjectives) {
  tune::ParetoSet set(2);
  EXPECT_THROW(set.add({{1.0, std::nan("")}, 0}), PreconditionError);
  EXPECT_THROW(set.add({{1.0, INFINITY}, 0}), PreconditionError);
  EXPECT_THROW(set.add({{1.0}, 0}), PreconditionError);  // wrong dims
}

// ----------------------------------------------------------------- sampler --

TEST(Sampler, PointsAreInUnitRangeAndSeedDeterministic) {
  const tune::KnobSampler a(4, 42);
  const tune::KnobSampler b(4, 42);
  const tune::KnobSampler other(4, 43);
  bool any_difference = false;
  for (std::uint64_t t = 0; t < 200; ++t) {
    const auto pa = a.unit_point(t);
    ASSERT_EQ(pa.size(), 4u);
    for (const double v : pa) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
    EXPECT_EQ(pa, b.unit_point(t));  // pure function of (dims, seed, t)
    if (pa != other.unit_point(t)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);  // the rotation actually depends on the seed
}

TEST(Sampler, LowDiscrepancyBeatsDegenerateClustering) {
  // Coarse sanity: 64 points over [0,1)^2 should hit most of a 4x4 grid —
  // a lattice that collapsed to a line or point would not.
  const tune::KnobSampler sampler(2, 1);
  std::vector<bool> cell(16, false);
  for (std::uint64_t t = 0; t < 64; ++t) {
    const auto p = sampler.unit_point(t);
    const int cx = std::min(3, static_cast<int>(p[0] * 4));
    const int cy = std::min(3, static_cast<int>(p[1] * 4));
    cell[static_cast<std::size_t>(cy * 4 + cx)] = true;
  }
  EXPECT_GE(std::count(cell.begin(), cell.end(), true), 12);
}

// -------------------------------------------------- knob space & parsing --

TEST(KnobSpace, DefaultsApplyRoundTrip) {
  const auto space = tune::KnobSpace::defaults();
  ASSERT_GT(space.size(), 0u);
  const std::vector<double> lo_corner(space.size(), 0.0);
  const std::vector<double> hi_corner(space.size(), 1.0);
  const auto lo = space.values(lo_corner);
  const auto hi = space.values(hi_corner);
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_DOUBLE_EQ(lo[i], space.knobs()[i].lo);
    EXPECT_DOUBLE_EQ(hi[i], space.knobs()[i].hi);
  }
  core::FlowOptions base;
  const auto applied = space.apply(base, hi_corner);
  EXPECT_DOUBLE_EQ(applied.anneal.inner_num, 20.0);  // registry hi
  // The baseline's coordinates read back the base options unchanged.
  const auto baseline = space.baseline_values(base);
  EXPECT_DOUBLE_EQ(baseline[0], base.anneal.inner_num);
}

TEST(KnobSpace, LogScaleInterpolatesGeometrically) {
  const auto space =
      tune::KnobSpace::from_spec("inner_num=2:32:log", "test");
  ASSERT_EQ(space.size(), 1u);
  EXPECT_DOUBLE_EQ(space.values({0.0})[0], 2.0);
  EXPECT_NEAR(space.values({0.5})[0], 8.0, 1e-9);  // geometric midpoint
  EXPECT_NEAR(space.values({1.0})[0], 32.0, 1e-9);
}

TEST(KnobSpace, RejectsUnknownKnobNamingTheRegistry) {
  try {
    (void)tune::KnobSpace::from_spec("no_such_knob=1:2", "--tune-knobs");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_knob"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("--tune-knobs"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("inner_num"), std::string::npos);
  }
}

TEST(KnobSpace, HashCoversNamesRangesAndScale) {
  const auto a = tune::KnobSpace::from_spec("inner_num=2:20", "t");
  const auto b = tune::KnobSpace::from_spec("inner_num=2:20:log", "t");
  const auto c = tune::KnobSpace::from_spec("inner_num=2:19", "t");
  const auto d = tune::KnobSpace::from_spec("astar_fac=1:1.5", "t");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_NE(a.hash(), d.hash());
  EXPECT_EQ(a.hash(), tune::KnobSpace::from_spec("inner_num=2:20", "t").hash());
}

TEST(Objectives, ParseValidatesNamesAndWalltime) {
  const auto set = tune::ObjectiveSet::parse("frames,wirelength", "--tune-objectives");
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.names[0], "frames");
  EXPECT_EQ(set.names[1], "wirelength");
  EXPECT_THROW((void)tune::ObjectiveSet::parse("bogus", "t"), PreconditionError);
  EXPECT_THROW((void)tune::ObjectiveSet::parse("frames,frames", "t"),
               PreconditionError);
  EXPECT_THROW((void)tune::ObjectiveSet::parse("", "t"), PreconditionError);
  try {
    (void)tune::ObjectiveSet::parse("walltime", "--tune-objectives");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("non-deterministic"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------- ledger --

tune::TrialRecord sample_record() {
  tune::TrialRecord record;
  record.trial = 7;
  record.rung = 2;
  record.ok = true;
  record.knob_values = {1.25, -0.0, 3.5e-7};
  record.objectives = {1.1163, 44.5, 8968.0};
  record.wall_ms = 1234;
  return record;
}

TEST(TrialLedger, RecordCodecRoundTripsBitExactly) {
  const auto record = sample_record();
  const std::string line = tune::TrialLedger::format_record(0xabcdef12u, record);
  std::uint64_t hash = 0;
  tune::TrialRecord decoded;
  ASSERT_TRUE(tune::TrialLedger::parse_record(line, hash, decoded));
  EXPECT_EQ(hash, 0xabcdef12u);
  EXPECT_EQ(decoded.trial, record.trial);
  EXPECT_EQ(decoded.rung, record.rung);
  EXPECT_EQ(decoded.ok, record.ok);
  EXPECT_EQ(decoded.knob_values, record.knob_values);
  EXPECT_EQ(decoded.objectives, record.objectives);
  EXPECT_EQ(decoded.wall_ms, record.wall_ms);
  // -0.0 must survive as -0.0 (bit identity, not value identity).
  EXPECT_TRUE(std::signbit(decoded.knob_values[1]));

  tune::TrialRecord failed = record;
  failed.ok = false;
  failed.objectives.clear();
  const std::string failed_line = tune::TrialLedger::format_record(1, failed);
  ASSERT_TRUE(tune::TrialLedger::parse_record(failed_line, hash, decoded));
  EXPECT_FALSE(decoded.ok);
  EXPECT_TRUE(decoded.objectives.empty());
}

TEST(TrialLedger, ParseRejectsMalformedLines) {
  const std::string good =
      tune::TrialLedger::format_record(42, sample_record());
  std::uint64_t hash;
  tune::TrialRecord record;
  EXPECT_TRUE(tune::TrialLedger::parse_record(good, hash, record));
  EXPECT_FALSE(tune::TrialLedger::parse_record("", hash, record));
  EXPECT_FALSE(tune::TrialLedger::parse_record("garbage", hash, record));
  EXPECT_FALSE(tune::TrialLedger::parse_record(
      good.substr(0, good.size() / 2), hash, record));  // torn tail
  EXPECT_FALSE(tune::TrialLedger::parse_record(good + " junk", hash, record));
  std::string wrong_tag = good;
  wrong_tag[8] = 'X';
  EXPECT_FALSE(tune::TrialLedger::parse_record(wrong_tag, hash, record));
  // A failed record must not carry objectives.
  std::string contradictory = good;
  const auto pos = contradictory.find(" ok ");
  ASSERT_NE(pos, std::string::npos);
  contradictory.replace(pos, 4, " failed ");
  EXPECT_FALSE(tune::TrialLedger::parse_record(contradictory, hash, record));
}

TEST(TrialLedger, SurvivesTornLinesAndForeignConfigs) {
  TempDir dir;
  const fs::path path = dir.path / "tune.log";
  {
    tune::TrialLedger ledger(path, 100);
    ledger.record(sample_record());
    tune::TrialRecord second = sample_record();
    second.trial = 9;
    ledger.record(second);
  }
  {
    // A record from another configuration plus a torn tail (no newline).
    tune::TrialLedger foreign(path, 999);
    tune::TrialRecord other = sample_record();
    other.trial = 11;
    foreign.record(other);
    std::ofstream os(path, std::ios::app);
    os << tune::TrialLedger::format_record(100, sample_record()).substr(0, 20);
  }
  tune::TrialLedger reloaded(path, 100);
  EXPECT_EQ(reloaded.size(), 2u);     // the two matching records survive
  EXPECT_GE(reloaded.skipped(), 2u);  // foreign config + torn tail
  ASSERT_NE(reloaded.find(7, 2), nullptr);
  ASSERT_NE(reloaded.find(9, 2), nullptr);
  EXPECT_EQ(reloaded.find(11, 2), nullptr);  // foreign config filtered
  EXPECT_EQ(reloaded.find(7, 2)->objectives, sample_record().objectives);

  // The re-terminated tail keeps later appends loadable.
  tune::TrialRecord third = sample_record();
  third.trial = 12;
  reloaded.record(third);
  tune::TrialLedger final_state(path, 100);
  EXPECT_EQ(final_state.size(), 3u);
}

// ------------------------------------------------------------ tuner runs --

TEST(Tuner, ScheduleAndFrontAreJobsInvariant) {
  const auto benchmarks = tiny_benchmarks(41);
  auto options = fast_tune_options();

  options.jobs = 1;
  const auto sequential = tune::tune(benchmarks, options);
  options.jobs = 4;
  const auto parallel = tune::tune(benchmarks, options);

  expect_same_trials(sequential.trials, parallel.trials);
  expect_same_trials(sequential.front, parallel.front);
  EXPECT_EQ(sequential.rungs, 3);  // budget 4 -> cohorts 4, 2, 1
  EXPECT_FALSE(sequential.front.empty());
  // Every front point is no worse than the baseline everywhere it ties and
  // strictly better somewhere — guaranteed because the baseline competes.
  for (const auto& point : sequential.front) {
    if (point.index == sequential.baseline.index) continue;
    EXPECT_FALSE(tune::dominates(sequential.baseline.objectives,
                                 point.objectives));
  }
}

TEST(Tuner, ResumeAfterKillMatchesUninterruptedRunBitIdentically) {
  const auto benchmarks = tiny_benchmarks(43);

  // Reference: uninterrupted, no persistence.
  auto reference_options = fast_tune_options();
  const auto reference = tune::tune(benchmarks, reference_options);

  // "First process": persists artifacts + ledger, dies after rung 0.
  TempDir dir;
  auto killed_options = fast_tune_options();
  killed_options.cache_dir = dir.path.string();
  killed_options.stop_after_rung = 0;
  const auto killed = tune::tune(benchmarks, killed_options);
  EXPECT_TRUE(killed.stopped_early);
  EXPECT_EQ(killed.rungs_run, 1);

  // "Second process": fresh tuner, resumes from the ledger.
  auto resumed_options = fast_tune_options();
  resumed_options.cache_dir = dir.path.string();
  resumed_options.resume = true;
  const auto resumed = tune::tune(benchmarks, resumed_options);

  expect_same_trials(reference.trials, resumed.trials);
  expect_same_trials(reference.front, resumed.front);
  // Rung 0 came from the ledger, not from recomputation.
  int replayed = 0;
  for (const auto& trial : resumed.trials) {
    if (trial.from_ledger) {
      EXPECT_EQ(trial.rung, 0);
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, 4);  // the whole rung-0 cohort
}

TEST(Tuner, LedgerConfigGuardForcesColdStartOnMismatch) {
  const auto benchmarks = tiny_benchmarks(47);
  TempDir dir;
  auto options = fast_tune_options();
  options.cache_dir = dir.path.string();
  options.stop_after_rung = 0;
  (void)tune::tune(benchmarks, options);

  // Same ledger, different tune seed: every record must be filtered.
  auto other = fast_tune_options();
  other.cache_dir = dir.path.string();
  other.resume = true;
  other.seed = options.seed + 1;
  other.stop_after_rung = 0;
  const auto rerun = tune::tune(benchmarks, other);
  for (const auto& trial : rerun.trials) {
    EXPECT_FALSE(trial.from_ledger);
  }
}

TEST(Tuner, ValidatesItsPreconditions) {
  const auto benchmarks = tiny_benchmarks(53);
  auto options = fast_tune_options();
  options.budget = 0;
  EXPECT_THROW((void)tune::tune(benchmarks, options), PreconditionError);
  options = fast_tune_options();
  options.resume = true;  // without cache_dir
  EXPECT_THROW((void)tune::tune(benchmarks, options), PreconditionError);
  EXPECT_THROW((void)tune::tune({}, fast_tune_options()), PreconditionError);
}

}  // namespace
}  // namespace mmflow

#include <gtest/gtest.h>

#include <set>

#include "aig/bridge.h"
#include "helpers.h"
#include "place/annealer.h"
#include "techmap/mapper.h"
#include "tunable/modefunc.h"

namespace mmflow {
namespace {

// ------------------------------------------------------ QM exhaustive checks

/// Evaluates a cube list on a minterm.
bool sop_eval(const std::vector<tunable::ModeCube>& cubes, std::uint32_t m) {
  return std::any_of(cubes.begin(), cubes.end(),
                     [m](const tunable::ModeCube& c) { return c.covers(m); });
}

TEST(QmExhaustive, AllTwoVarFunctions) {
  // All 16 functions of 2 variables, no don't-cares: the SOP must equal the
  // function exactly, and literal counts must be minimal for the known
  // textbook cases.
  for (std::uint32_t f = 0; f < 16; ++f) {
    const auto cubes = tunable::qm_minimize(2, f, 0);
    for (std::uint32_t m = 0; m < 4; ++m) {
      EXPECT_EQ(sop_eval(cubes, m), ((f >> m) & 1) != 0)
          << "function " << f << " minterm " << m;
    }
  }
  // XOR (0b0110) needs exactly 2 cubes of 2 literals.
  const auto xor_cubes = tunable::qm_minimize(2, 0b0110, 0);
  EXPECT_EQ(xor_cubes.size(), 2u);
  // a OR b (0b1110) needs 2 single-literal cubes.
  const auto or_cubes = tunable::qm_minimize(2, 0b1110, 0);
  ASSERT_EQ(or_cubes.size(), 2u);
  for (const auto& c : or_cubes) EXPECT_EQ(std::popcount(c.care), 1);
}

TEST(QmExhaustive, AllThreeVarFunctionsWithRandomDontCares) {
  Rng rng(123);
  for (std::uint32_t f = 0; f < 256; ++f) {
    const auto dc = static_cast<std::uint32_t>(rng()) & 0xffu & ~f;
    const auto cubes = tunable::qm_minimize(3, f, dc);
    for (std::uint32_t m = 0; m < 8; ++m) {
      const bool covered = sop_eval(cubes, m);
      if ((f >> m) & 1) {
        EXPECT_TRUE(covered) << "f=" << f << " m=" << m;
      } else if (!((dc >> m) & 1)) {
        EXPECT_FALSE(covered) << "f=" << f << " m=" << m;
      }
    }
  }
}

TEST(QmExhaustive, PrimeCountNeverExceedsMinterms) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const auto f = static_cast<std::uint32_t>(rng()) & 0xffffu;
    const auto cubes = tunable::qm_minimize(4, f, 0);
    EXPECT_LE(cubes.size(),
              static_cast<std::size_t>(std::popcount(f)));
  }
}

TEST(ModeFunctionProperty, SopAgreesWithEvaluation) {
  // Property: for every mode count 2..8 and random true-sets, evaluating
  // the minimized cubes reproduces eval() on all valid modes.
  Rng rng(55);
  for (int num_modes = 2; num_modes <= 8; ++num_modes) {
    for (int trial = 0; trial < 50; ++trial) {
      const auto set = static_cast<tunable::ModeSet>(rng()) &
                       tunable::all_modes(num_modes);
      const tunable::ModeFunction f(num_modes, set);
      const int bits = tunable::num_mode_bits(num_modes);
      std::uint32_t dc = 0;
      for (int code = num_modes; code < (1 << bits); ++code) {
        dc |= 1u << code;
      }
      const auto cubes = tunable::qm_minimize(bits, set, dc);
      for (int m = 0; m < num_modes; ++m) {
        EXPECT_EQ(sop_eval(cubes, static_cast<std::uint32_t>(m)), f.eval(m))
            << "modes=" << num_modes << " set=" << set << " m=" << m;
      }
    }
  }
}

TEST(ModeFunctionProperty, NumModeBits) {
  EXPECT_EQ(tunable::num_mode_bits(1), 1);
  EXPECT_EQ(tunable::num_mode_bits(2), 1);
  EXPECT_EQ(tunable::num_mode_bits(3), 2);
  EXPECT_EQ(tunable::num_mode_bits(4), 2);
  EXPECT_EQ(tunable::num_mode_bits(5), 3);
  EXPECT_EQ(tunable::num_mode_bits(8), 3);
  EXPECT_EQ(tunable::num_mode_bits(9), 4);
}

// ------------------------------------------------------ annealer properties

TEST(AnnealSchedule, TemperatureDecreasesAtModerateAcceptance) {
  place::AnnealOptions options;
  place::AnnealSchedule schedule(options, 100, 20);
  schedule.set_initial_temperature(10.0);
  double prev = schedule.temperature();
  for (int i = 0; i < 50; ++i) {
    schedule.step(0.4);
    EXPECT_LT(schedule.temperature(), prev);
    prev = schedule.temperature();
  }
}

TEST(AnnealSchedule, RangeLimitStaysInBounds) {
  place::AnnealOptions options;
  place::AnnealSchedule schedule(options, 100, 20);
  schedule.set_initial_temperature(10.0);
  for (int i = 0; i < 100; ++i) {
    schedule.step(i % 2 == 0 ? 0.9 : 0.05);
    EXPECT_GE(schedule.range_limit(), 1);
    EXPECT_LE(schedule.range_limit(), 20);
  }
  // Low acceptance shrinks the range limit to 1 eventually.
  for (int i = 0; i < 100; ++i) schedule.step(0.01);
  EXPECT_EQ(schedule.range_limit(), 1);
}

TEST(AnnealSchedule, MovesScaleWithBlockCount) {
  place::AnnealOptions options;
  const place::AnnealSchedule small(options, 10, 5);
  const place::AnnealSchedule large(options, 1000, 5);
  EXPECT_GT(large.moves_per_temperature(), small.moves_per_temperature() * 50);
}

TEST(CrossingFactorProperty, MonotoneNonDecreasing) {
  double prev = 0.0;
  for (std::size_t t = 1; t < 120; ++t) {
    const double q = place::crossing_factor(t);
    EXPECT_GE(q, prev) << "terminals " << t;
    prev = q;
  }
}

// ------------------------------------------------------- mapper truth tables

TEST(MapperTruth, KnownFunctionsMapExactly) {
  // Single-LUT functions must produce the exact truth table.
  struct Case {
    const char* name;
    std::uint64_t expected_truth;  // over inputs (a=bit0, b=bit1)
  };
  netlist::Netlist nl("t");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  nl.add_output("and", nl.add_and(a, b));

  const auto mapped = techmap::map_to_luts(aig::aig_from_netlist(nl));
  ASSERT_EQ(mapped.num_blocks(), 1u);
  const auto& block = mapped.blocks()[0];
  ASSERT_EQ(block.inputs.size(), 2u);
  // AND truth over 2 inputs is 0b1000 regardless of input order.
  EXPECT_EQ(block.truth, 0b1000u);
}

TEST(MapperTruth, FfInitPreserved) {
  netlist::Netlist nl("init");
  const auto d = nl.add_input("d");
  const auto q1 = nl.add_latch(netlist::kNoSignal, true, "q1");
  const auto q0 = nl.add_latch(netlist::kNoSignal, false, "q0");
  nl.set_latch_input(q1, d);
  nl.set_latch_input(q0, d);
  nl.add_output("q1", q1);
  nl.add_output("q0", q0);
  const auto mapped = techmap::map_to_luts(aig::aig_from_netlist(nl));
  int with_init = 0;
  int without_init = 0;
  for (const auto& block : mapped.blocks()) {
    if (!block.has_ff) continue;
    (block.ff_init ? with_init : without_init)++;
  }
  EXPECT_EQ(with_init, 1);
  EXPECT_EQ(without_init, 1);
}

class MapperCutLimitTest : public ::testing::TestWithParam<int> {};

TEST_P(MapperCutLimitTest, QualityDegradesGracefully) {
  // Fewer priority cuts may worsen area but never correctness.
  Rng rng(17);
  netlist::Netlist nl("cl");
  std::vector<netlist::SignalId> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(nl.add_input("i" + std::to_string(i)));
  for (int g = 0; g < 80; ++g) {
    const auto x = pool[rng.next_below(pool.size())];
    const auto y = pool[rng.next_below(pool.size())];
    pool.push_back(rng.next_bool(0.5) ? nl.add_xor(x, y) : nl.add_and(x, y));
  }
  for (int i = 0; i < 3; ++i) {
    nl.add_output("o" + std::to_string(i), pool[pool.size() - 1 - i]);
  }
  techmap::MapperOptions options;
  options.cuts_per_node = GetParam();
  const auto mapped = techmap::map_to_luts(aig::aig_from_netlist(nl), options);
  mmflow::testing::expect_equivalent(nl, mapped, 16, 3);
}

INSTANTIATE_TEST_SUITE_P(CutLimits, MapperCutLimitTest,
                         ::testing::Values(1, 2, 4, 16));

// -------------------------------------------------------- AIG sweep property

TEST(AigProperty, SweepIsIdempotentAndPreservesInterface) {
  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    aig::Aig g;
    std::vector<aig::Lit> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(g.add_pi("i" + std::to_string(i)));
    for (int n = 0; n < 50; ++n) {
      const auto a = pool[rng.next_below(pool.size())];
      const auto b = pool[rng.next_below(pool.size())];
      pool.push_back(rng.next_bool(0.3) ? g.or2(a, b) : g.and2(a, b));
    }
    g.add_po("o", pool.back());
    const auto once = g.sweep();
    const auto twice = once.sweep();
    EXPECT_EQ(once.num_ands(), twice.num_ands());
    EXPECT_EQ(once.pis().size(), g.pis().size());
    EXPECT_LE(once.num_ands(), g.num_ands());
  }
}

}  // namespace
}  // namespace mmflow

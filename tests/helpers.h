#pragma once
/// Shared helpers for the mmflow test suite: random stimulus generation and
/// cross-simulator equivalence checks. Equivalence-by-simulation is the
/// backbone of the suite: every transformation in the flow (synthesis,
/// mapping, merging, specialization) must preserve sequential behaviour.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "netlist/netlist.h"
#include "netlist/sim.h"
#include "techmap/lutcircuit.h"

namespace mmflow::testing {

/// Random 64-pattern words, one per input.
inline std::vector<std::uint64_t> random_words(std::size_t n, Rng& rng) {
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) w = rng();
  return words;
}

/// Reorders `words` (indexed by `from_names`) into `to_names` order.
/// Missing names are an error: interfaces must match exactly.
inline std::vector<std::uint64_t> reorder_words(
    const std::vector<std::uint64_t>& words,
    const std::vector<std::string>& from_names,
    const std::vector<std::string>& to_names) {
  std::map<std::string, std::uint64_t> by_name;
  for (std::size_t i = 0; i < from_names.size(); ++i) {
    by_name[from_names[i]] = words[i];
  }
  std::vector<std::uint64_t> out;
  out.reserve(to_names.size());
  for (const auto& name : to_names) {
    const auto it = by_name.find(name);
    EXPECT_NE(it, by_name.end()) << "missing input " << name;
    out.push_back(it == by_name.end() ? 0 : it->second);
  }
  return out;
}

inline std::vector<std::string> netlist_input_names(const netlist::Netlist& nl) {
  std::vector<std::string> names;
  for (const auto in : nl.inputs()) names.push_back(nl.signal(in).name);
  return names;
}

inline std::vector<std::string> netlist_output_names(const netlist::Netlist& nl) {
  std::vector<std::string> names;
  for (const auto& out : nl.outputs()) names.push_back(out.name);
  return names;
}

inline std::vector<std::string> lut_output_names(
    const techmap::LutCircuit& c) {
  std::vector<std::string> names;
  for (const auto& po : c.pos()) names.push_back(po.name);
  return names;
}

/// Runs both simulators for `cycles` cycles on identical random stimulus and
/// compares every output every cycle (by output name).
inline void expect_equivalent(const netlist::Netlist& golden,
                              const techmap::LutCircuit& mapped,
                              int cycles, std::uint64_t seed) {
  ASSERT_EQ(golden.inputs().size(), mapped.num_pis());
  ASSERT_EQ(golden.outputs().size(), mapped.num_pos());

  const auto golden_inputs = netlist_input_names(golden);
  std::vector<std::string> mapped_inputs = mapped.pi_names();

  netlist::Simulator sim_golden(golden);
  techmap::LutSimulator sim_mapped(mapped);

  // Output index mapping by name.
  const auto golden_outputs = netlist_output_names(golden);
  const auto mapped_outputs = lut_output_names(mapped);

  Rng rng(seed);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    const auto words = random_words(golden_inputs.size(), rng);
    const auto mapped_words = reorder_words(words, golden_inputs, mapped_inputs);
    const auto out_g = sim_golden.step(words);
    const auto out_m = sim_mapped.step(mapped_words);
    for (std::size_t i = 0; i < golden_outputs.size(); ++i) {
      // Find the mapped output with the same name.
      const auto it = std::find(mapped_outputs.begin(), mapped_outputs.end(),
                                golden_outputs[i]);
      ASSERT_NE(it, mapped_outputs.end())
          << "missing output " << golden_outputs[i];
      const std::size_t j =
          static_cast<std::size_t>(it - mapped_outputs.begin());
      ASSERT_EQ(out_g[i], out_m[j])
          << "mismatch on output '" << golden_outputs[i] << "' in cycle "
          << cycle;
    }
  }
}

/// Netlist-vs-netlist sequential equivalence on random stimulus.
inline void expect_equivalent(const netlist::Netlist& a,
                              const netlist::Netlist& b, int cycles,
                              std::uint64_t seed) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  const auto a_in = netlist_input_names(a);
  const auto b_in = netlist_input_names(b);
  const auto a_out = netlist_output_names(a);
  const auto b_out = netlist_output_names(b);

  netlist::Simulator sim_a(a);
  netlist::Simulator sim_b(b);
  Rng rng(seed);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    const auto words = random_words(a_in.size(), rng);
    const auto words_b = reorder_words(words, a_in, b_in);
    const auto out_a = sim_a.step(words);
    const auto out_b = sim_b.step(words_b);
    for (std::size_t i = 0; i < a_out.size(); ++i) {
      const auto it = std::find(b_out.begin(), b_out.end(), a_out[i]);
      ASSERT_NE(it, b_out.end()) << "missing output " << a_out[i];
      ASSERT_EQ(out_a[i], out_b[static_cast<std::size_t>(it - b_out.begin())])
          << "mismatch on '" << a_out[i] << "' in cycle " << cycle;
    }
  }
}

}  // namespace mmflow::testing

#include <gtest/gtest.h>

#include "aig/aig.h"
#include "aig/bridge.h"
#include "helpers.h"
#include "netlist/blif.h"

namespace mmflow::aig {
namespace {

TEST(Aig, ConstantFoldingRules) {
  Aig g;
  const Lit a = g.add_pi("a");
  EXPECT_EQ(g.and2(a, kLitFalse), kLitFalse);
  EXPECT_EQ(g.and2(kLitTrue, a), a);
  EXPECT_EQ(g.and2(a, a), a);
  EXPECT_EQ(g.and2(a, lit_not(a)), kLitFalse);
  EXPECT_EQ(g.num_ands(), 0u);
}

TEST(Aig, StructuralHashing) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  const Lit x = g.and2(a, b);
  const Lit y = g.and2(b, a);  // commuted
  EXPECT_EQ(x, y);
  EXPECT_EQ(g.num_ands(), 1u);
}

TEST(Aig, OrXorMuxViaDeMorgan) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  g.add_po("or", g.or2(a, b));
  g.add_po("xor", g.xor2(a, b));
  g.add_po("mux_aab", g.mux(a, a, b));  // a ? a : b == a | b

  const auto nl = netlist_from_aig(g, "t");
  netlist::Simulator sim(nl);
  const auto out = sim.eval_outputs({0b0101, 0b0011});
  EXPECT_EQ(out[0] & 0xf, 0b0111u);
  EXPECT_EQ(out[1] & 0xf, 0b0110u);
  EXPECT_EQ(out[2] & 0xf, 0b0111u);
}

TEST(Aig, SweepRemovesDeadLogic) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  (void)g.and2(a, b);                      // dead
  const Lit live = g.and2(a, lit_not(b));  // live
  g.add_po("y", live);
  EXPECT_EQ(g.num_ands(), 2u);
  const Aig swept = g.sweep();
  EXPECT_EQ(swept.num_ands(), 1u);
  EXPECT_EQ(swept.pis().size(), 2u);  // interface preserved
}

TEST(Aig, SweepRemovesDeadLatchCone) {
  Aig g;
  const Lit a = g.add_pi("a");
  // Dead latch: output unused.
  const Lit dead = g.add_latch(false);
  g.set_latch_next(dead, g.and2(a, dead));
  // Live latch.
  const Lit live = g.add_latch(true);
  g.set_latch_next(live, lit_not(live));
  g.add_po("q", live);

  const Aig swept = g.sweep();
  EXPECT_EQ(swept.latches().size(), 1u);
  EXPECT_EQ(swept.num_ands(), 0u);
}

TEST(Aig, SweepKeepsSelfFeedingLiveLatch) {
  Aig g;
  const Lit q = g.add_latch(false);
  const Lit a = g.add_pi("a");
  g.set_latch_next(q, g.xor2(q, a));
  g.add_po("q", q);
  const Aig swept = g.sweep();
  EXPECT_EQ(swept.latches().size(), 1u);
  // xor = 3 ANDs under strashing (a&!q, !a&q, !(..)&!(..)).
  EXPECT_EQ(swept.num_ands(), 3u);
}

TEST(Bridge, NetlistRoundTripCombinational) {
  netlist::Netlist nl("comb");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  nl.add_output("f", nl.add_mux(a, nl.add_xor(b, c), nl.add_nor(b, c)));
  nl.add_output("g", nl.add_or(nl.add_and(a, b), c));

  const Aig g = aig_from_netlist(nl);
  const auto back = netlist_from_aig(g, "back");
  mmflow::testing::expect_equivalent(nl, back, 16, 1234);
}

TEST(Bridge, NetlistRoundTripSequential) {
  netlist::Netlist nl("seq");
  const auto en = nl.add_input("en");
  const auto d = nl.add_input("d");
  const auto q0 = nl.add_latch(netlist::kNoSignal, false, "q0");
  const auto q1 = nl.add_latch(netlist::kNoSignal, true, "q1");
  nl.set_latch_input(q0, nl.add_mux(en, d, q0));
  nl.set_latch_input(q1, nl.add_xor(q0, q1));
  nl.add_output("q0", q0);
  nl.add_output("q1", q1);

  const Aig g = aig_from_netlist(nl);
  EXPECT_EQ(g.latches().size(), 2u);
  const auto back = netlist_from_aig(g, "back");
  mmflow::testing::expect_equivalent(nl, back, 64, 77);
}

TEST(Bridge, ConstBindingsPropagate) {
  // f = (a AND k) OR (b AND !k): binding k collapses the mux to one input.
  netlist::Netlist nl("bind");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto k = nl.add_input("k");
  nl.add_output("f", nl.add_mux(k, a, b));

  const Aig generic = aig_from_netlist(nl);
  const Aig bound1 = aig_from_netlist(nl, {{"k", true}});
  EXPECT_EQ(bound1.pis().size(), 2u);
  // Strashing + folding is structural, not a Boolean minimizer: the bound
  // cone shrinks but need not collapse to a bare wire.
  EXPECT_LT(bound1.num_ands(), generic.num_ands());

  const Aig bound0 = aig_from_netlist(nl, {{"k", false}});
  EXPECT_LT(bound0.num_ands(), generic.num_ands());

  // Semantics: bound1 output == a.
  const auto back = netlist_from_aig(bound1, "back");
  netlist::Simulator sim(back);
  EXPECT_EQ(sim.eval_outputs({0b01, 0b10})[0] & 0b11, 0b01u);
}

TEST(Bridge, ConstantPropagationShrinksLogic) {
  // A 4-bit adder with one operand constant should shrink markedly.
  netlist::Netlist nl("add4");
  std::vector<netlist::SignalId> a(4);
  std::vector<netlist::SignalId> b(4);
  for (int i = 0; i < 4; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (int i = 0; i < 4; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  netlist::SignalId carry = nl.add_constant(false);
  for (int i = 0; i < 4; ++i) {
    auto [s, c] = nl.add_full_adder(a[i], b[i], carry);
    nl.add_output("s" + std::to_string(i), s);
    carry = c;
  }
  nl.add_output("cout", carry);

  const Aig generic = aig_from_netlist(nl);
  const Aig bound = aig_from_netlist(
      nl, {{"b0", false}, {"b1", true}, {"b2", false}, {"b3", false}});
  EXPECT_LT(bound.num_ands(), generic.num_ands());
}

TEST(Bridge, OffsetCoverNetlist) {
  const auto nl = netlist::parse_blif(
      ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n");
  const Aig g = aig_from_netlist(nl);
  const auto back = netlist_from_aig(g, "back");
  mmflow::testing::expect_equivalent(nl, back, 8, 5);
}

}  // namespace
}  // namespace mmflow::aig

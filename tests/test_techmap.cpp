#include <gtest/gtest.h>

#include "aig/bridge.h"
#include "helpers.h"
#include "netlist/blif.h"
#include "techmap/mapper.h"

namespace mmflow::techmap {
namespace {

netlist::Netlist random_logic_netlist(int num_inputs, int num_gates,
                                      int num_latches, std::uint64_t seed) {
  Rng rng(seed);
  netlist::Netlist nl("rand");
  std::vector<netlist::SignalId> pool;
  for (int i = 0; i < num_inputs; ++i) {
    pool.push_back(nl.add_input("i" + std::to_string(i)));
  }
  std::vector<netlist::SignalId> latches;
  for (int i = 0; i < num_latches; ++i) {
    const auto q = nl.add_latch(netlist::kNoSignal, rng.next_bool(0.5),
                                "q" + std::to_string(i));
    latches.push_back(q);
    pool.push_back(q);
  }
  for (int i = 0; i < num_gates; ++i) {
    const auto a = pool[rng.next_below(pool.size())];
    const auto b = pool[rng.next_below(pool.size())];
    const auto c = pool[rng.next_below(pool.size())];
    netlist::SignalId g = 0;
    switch (rng.next_below(5)) {
      case 0: g = nl.add_and(a, b); break;
      case 1: g = nl.add_or(a, b); break;
      case 2: g = nl.add_xor(a, b); break;
      case 3: g = nl.add_mux(a, b, c); break;
      case 4: g = nl.add_nand(a, b); break;
    }
    pool.push_back(g);
  }
  for (std::size_t i = 0; i < latches.size(); ++i) {
    nl.set_latch_input(latches[i], pool[pool.size() - 1 - i]);
  }
  for (int i = 0; i < 4; ++i) {
    nl.add_output("o" + std::to_string(i), pool[pool.size() - 1 - i]);
  }
  return nl;
}

TEST(Mapper, SimpleCombinationalEquivalence) {
  netlist::Netlist nl("c");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  const auto d = nl.add_input("d");
  nl.add_output("f", nl.add_xor(nl.add_and(a, b), nl.add_or(c, d)));

  const auto g = aig::aig_from_netlist(nl);
  MapperStats stats;
  const auto mapped = map_to_luts(g, MapperOptions{}, &stats);
  // f fits one 4-LUT.
  EXPECT_EQ(stats.num_luts, 1u);
  EXPECT_EQ(stats.depth, 1);
  mmflow::testing::expect_equivalent(nl, mapped, 8, 42);
}

TEST(Mapper, RespectsK) {
  netlist::Netlist nl("wide");
  std::vector<netlist::SignalId> ins;
  for (int i = 0; i < 13; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  nl.add_output("f", nl.add_xor_tree(ins));

  for (int k : {2, 3, 4, 5, 6}) {
    MapperOptions opts;
    opts.k = k;
    const auto mapped = map_to_luts(aig::aig_from_netlist(nl), opts);
    for (const auto& block : mapped.blocks()) {
      EXPECT_LE(static_cast<int>(block.inputs.size()), k);
    }
    mmflow::testing::expect_equivalent(nl, mapped, 4, 7);
  }
}

TEST(Mapper, SequentialEquivalence) {
  // 4-bit counter with enable.
  netlist::Netlist nl("ctr");
  const auto en = nl.add_input("en");
  std::vector<netlist::SignalId> q;
  for (int i = 0; i < 4; ++i) {
    q.push_back(nl.add_latch(netlist::kNoSignal, false, "q" + std::to_string(i)));
  }
  netlist::SignalId carry = en;
  for (int i = 0; i < 4; ++i) {
    nl.set_latch_input(q[i], nl.add_xor(q[i], carry));
    carry = nl.add_and(q[i], carry);
  }
  for (int i = 0; i < 4; ++i) nl.add_output("q" + std::to_string(i), q[i]);

  MapperStats stats;
  const auto mapped = map_to_luts(aig::aig_from_netlist(nl), MapperOptions{}, &stats);
  EXPECT_EQ(stats.num_ffs, 4u);
  mmflow::testing::expect_equivalent(nl, mapped, 64, 3);
}

TEST(Mapper, FfAbsorptionPacksExclusiveDrivers) {
  // q <= a XOR b, q unused elsewhere: the XOR LUT should absorb the FF
  // (one block total).
  netlist::Netlist nl("pack");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto q = nl.add_latch(netlist::kNoSignal, false, "q");
  nl.set_latch_input(q, nl.add_xor(a, b));
  nl.add_output("q", q);

  const auto mapped = map_to_luts(aig::aig_from_netlist(nl));
  EXPECT_EQ(mapped.num_blocks(), 1u);
  EXPECT_TRUE(mapped.blocks()[0].has_ff);
  mmflow::testing::expect_equivalent(nl, mapped, 32, 11);
}

TEST(Mapper, SharedDriverGetsFeedThroughFf) {
  // f = a XOR b used combinationally AND registered: FF cannot absorb.
  netlist::Netlist nl("noabsorb");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto f = nl.add_xor(a, b);
  const auto q = nl.add_latch(netlist::kNoSignal, false, "q");
  nl.set_latch_input(q, f);
  nl.add_output("f", f);
  nl.add_output("q", q);

  const auto mapped = map_to_luts(aig::aig_from_netlist(nl));
  EXPECT_EQ(mapped.num_ffs(), 1u);
  mmflow::testing::expect_equivalent(nl, mapped, 32, 13);
}

TEST(Mapper, RegisteredPiNeedsFeedThrough) {
  netlist::Netlist nl("regpi");
  const auto d = nl.add_input("d");
  const auto q = nl.add_latch(netlist::kNoSignal, true, "q");
  nl.set_latch_input(q, d);
  nl.add_output("q", q);

  const auto mapped = map_to_luts(aig::aig_from_netlist(nl));
  EXPECT_EQ(mapped.num_blocks(), 1u);
  EXPECT_TRUE(mapped.blocks()[0].has_ff);
  mmflow::testing::expect_equivalent(nl, mapped, 16, 19);
}

TEST(Mapper, InvertedAndConstantPos) {
  netlist::Netlist nl("invpo");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  nl.add_output("nand", nl.add_nand(a, b));
  nl.add_output("zero", nl.add_constant(false));
  nl.add_output("one", nl.add_constant(true));
  nl.add_output("na", nl.add_not(a));

  const auto mapped = map_to_luts(aig::aig_from_netlist(nl));
  mmflow::testing::expect_equivalent(nl, mapped, 8, 23);
}

TEST(Mapper, PoDirectlyFromPi) {
  netlist::Netlist nl("wirepo");
  const auto a = nl.add_input("a");
  nl.add_output("y", a);
  const auto mapped = map_to_luts(aig::aig_from_netlist(nl));
  mmflow::testing::expect_equivalent(nl, mapped, 4, 29);
}

class MapperRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapperRandomTest, RandomLogicEquivalence) {
  const auto nl = random_logic_netlist(8, 60, 6, GetParam());
  const auto g = aig::aig_from_netlist(nl);
  const auto mapped = map_to_luts(g);
  mmflow::testing::expect_equivalent(nl, mapped, 48, GetParam() * 31 + 7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Mapper, DepthIsMonotoneInK) {
  const auto nl = random_logic_netlist(10, 120, 0, 99);
  const auto g = aig::aig_from_netlist(nl);
  int prev_depth = 1 << 20;
  for (int k : {2, 3, 4, 5, 6}) {
    MapperOptions opts;
    opts.k = k;
    MapperStats stats;
    (void)map_to_luts(g, opts, &stats);
    EXPECT_LE(stats.depth, prev_depth);
    prev_depth = stats.depth;
  }
}

TEST(Mapper, LutCountShrinksWithLargerK) {
  const auto nl = random_logic_netlist(10, 150, 0, 123);
  const auto g = aig::aig_from_netlist(nl);
  MapperOptions k2;
  k2.k = 2;
  MapperOptions k6;
  k6.k = 6;
  MapperStats s2, s6;
  (void)map_to_luts(g, k2, &s2);
  (void)map_to_luts(g, k6, &s6);
  EXPECT_LT(s6.num_luts, s2.num_luts);
}

}  // namespace
}  // namespace mmflow::techmap

/// \file test_verify.cpp
/// The mode-equivalence gate, tested at every layer: the CDCL solver on
/// hand-built CNFs, the Tseitin encoder against enumerated truth tables, the
/// miter on identical and on deliberately corrupted circuits, and the
/// checker-of-the-checker mutation suite (every mutation class must yield
/// FAILED plus a counterexample that replays under netlist::Simulator).

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "aig/bridge.h"
#include "common/faults.h"
#include "common/perf.h"
#include "helpers.h"
#include "netlist/sim.h"
#include "techmap/mapper.h"
#include "tunable/tunable_circuit.h"
#include "verify/cnf.h"
#include "verify/mutate.h"
#include "verify/sat.h"
#include "verify/verify.h"

namespace mmflow::verify {
namespace {

using techmap::LutCircuit;
using techmap::Ref;
using tunable::MergeAssignment;
using tunable::TunableCircuit;

// ------------------------------------------------------------------ SatSolver

TEST(SatSolver, SatisfiableWithModelCheck) {
  // (a ∨ b) ∧ (¬a ∨ c) ∧ (¬b ∨ ¬c) — satisfiable.
  SatSolver solver;
  const auto a = solver.new_var();
  const auto b = solver.new_var();
  const auto c = solver.new_var();
  solver.add_clause({make_lit(a), make_lit(b)});
  solver.add_clause({make_lit(a, true), make_lit(c)});
  solver.add_clause({make_lit(b, true), make_lit(c, true)});
  ASSERT_EQ(solver.solve(), SatResult::Sat);
  const bool va = solver.model_value(a);
  const bool vb = solver.model_value(b);
  const bool vc = solver.model_value(c);
  EXPECT_TRUE(va || vb);
  EXPECT_TRUE(!va || vc);
  EXPECT_TRUE(!vb || !vc);
}

TEST(SatSolver, UnsatPigeonhole) {
  // PHP(4,3): 4 pigeons, 3 holes — classically UNSAT and requires real
  // conflict analysis (not just unit propagation).
  SatSolver solver;
  std::uint32_t x[4][3];
  for (auto& row : x) {
    for (auto& v : row) v = solver.new_var();
  }
  for (int p = 0; p < 4; ++p) {
    solver.add_clause({make_lit(x[p][0]), make_lit(x[p][1]), make_lit(x[p][2])});
  }
  for (int h = 0; h < 3; ++h) {
    for (int p1 = 0; p1 < 4; ++p1) {
      for (int p2 = p1 + 1; p2 < 4; ++p2) {
        solver.add_clause({make_lit(x[p1][h], true), make_lit(x[p2][h], true)});
      }
    }
  }
  EXPECT_EQ(solver.solve(), SatResult::Unsat);
  EXPECT_GT(solver.stats().conflicts, 0u);
  EXPECT_GT(solver.stats().learned_clauses, 0u);
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  SatSolver solver;
  solver.new_var();
  solver.add_clause({});
  EXPECT_EQ(solver.solve(), SatResult::Unsat);
}

TEST(SatSolver, RootUnitConflictIsUnsat) {
  SatSolver solver;
  const auto a = solver.new_var();
  solver.add_clause({make_lit(a)});
  solver.add_clause({make_lit(a, true)});
  EXPECT_EQ(solver.solve(), SatResult::Unsat);
}

TEST(SatSolver, TautologyAndDuplicatesDropped) {
  SatSolver solver;
  const auto a = solver.new_var();
  const auto b = solver.new_var();
  solver.add_clause({make_lit(a), make_lit(a, true)});          // tautology
  solver.add_clause({make_lit(b), make_lit(b), make_lit(b)});   // dup -> unit b
  ASSERT_EQ(solver.solve(), SatResult::Sat);
  EXPECT_TRUE(solver.model_value(b));
}

TEST(SatSolver, ImplicationChainPropagatesWithoutDecisions) {
  // a ∧ (a→b) ∧ (b→c) ∧ (c→d): everything follows by unit propagation.
  SatSolver solver;
  std::uint32_t v[4];
  for (auto& var : v) var = solver.new_var();
  solver.add_clause({make_lit(v[0])});
  for (int i = 0; i < 3; ++i) {
    solver.add_clause({make_lit(v[i], true), make_lit(v[i + 1])});
  }
  ASSERT_EQ(solver.solve(), SatResult::Sat);
  for (const auto var : v) EXPECT_TRUE(solver.model_value(var));
  EXPECT_EQ(solver.stats().conflicts, 0u);
}

TEST(SatSolver, DeterministicSearchAndStats) {
  // The same random 3-SAT instance solved twice must produce bit-identical
  // models and identical search statistics (the determinism contract).
  const auto build_and_solve = [](std::vector<bool>* model, SatStats* stats) {
    Rng rng(4242);
    SatSolver solver;
    for (int i = 0; i < 30; ++i) solver.new_var();
    for (int c = 0; c < 110; ++c) {
      std::vector<Lit> clause;
      for (int l = 0; l < 3; ++l) {
        clause.push_back(make_lit(static_cast<std::uint32_t>(rng.next_below(30)),
                                  (rng() & 1) != 0));
      }
      solver.add_clause(std::move(clause));
    }
    const SatResult result = solver.solve();
    if (result == SatResult::Sat) {
      for (std::uint32_t v = 0; v < solver.num_vars(); ++v) {
        model->push_back(solver.model_value(v));
      }
    }
    *stats = solver.stats();
    return result;
  };
  std::vector<bool> model1, model2;
  SatStats stats1, stats2;
  const SatResult r1 = build_and_solve(&model1, &stats1);
  const SatResult r2 = build_and_solve(&model2, &stats2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(model1, model2);
  EXPECT_EQ(stats1.decisions, stats2.decisions);
  EXPECT_EQ(stats1.propagations, stats2.propagations);
  EXPECT_EQ(stats1.conflicts, stats2.conflicts);
  EXPECT_EQ(stats1.learned_literals, stats2.learned_literals);
}

// -------------------------------------------------------------- LutConeEncoder

/// Evaluates an encoded cone under one full input assignment by adding unit
/// clauses and solving; returns the modelled output value.
bool eval_encoded(const LutCircuit& circuit, Ref out,
                  const std::vector<bool>& inputs) {
  SatSolver solver;
  std::vector<Lit> pi_lits;
  for (std::size_t i = 0; i < circuit.num_pis(); ++i) {
    pi_lits.push_back(make_lit(solver.new_var()));
  }
  LutConeEncoder encoder(circuit, solver, pi_lits);
  const Lit y = encoder.encode(out);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    solver.add_clause({inputs[i] ? pi_lits[i] : lit_not(pi_lits[i])});
  }
  EXPECT_EQ(solver.solve(), SatResult::Sat);
  return solver.model_value(lit_var(y)) != lit_negated(y);
}

TEST(LutConeEncoder, TwoLevelConeMatchesTruthTables) {
  // o = (a XOR b) AND (b OR c): exhaustive agreement over all 8 inputs.
  LutCircuit c(4, "cone");
  c.add_pi("a");
  c.add_pi("b");
  c.add_pi("c");
  c.add_block({"x", {Ref::pi(0), Ref::pi(1)}, 0b0110, false, false});
  c.add_block({"o", {Ref::pi(1), Ref::pi(2)}, 0b1110, false, false});
  c.add_block({"top", {Ref::block(0), Ref::block(1)}, 0b1000, false, false});
  for (int m = 0; m < 8; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1, cc = (m >> 2) & 1;
    const bool expect = (a != b) && (b || cc);
    EXPECT_EQ(eval_encoded(c, Ref::block(2), {a, b, cc}), expect) << m;
  }
}

TEST(LutConeEncoder, DuplicateFaninsEncodeCorrectly) {
  // Block reading the same PI twice with AND truth: output == that PI. The
  // unreachable minterms (01 / 10) become tautological clauses.
  LutCircuit c(4, "dup");
  c.add_pi("a");
  c.add_block({"d", {Ref::pi(0), Ref::pi(0)}, 0b1000, false, false});
  EXPECT_FALSE(eval_encoded(c, Ref::block(0), {false}));
  EXPECT_TRUE(eval_encoded(c, Ref::block(0), {true}));
}

TEST(LutConeEncoder, ConstantLuts) {
  // 0-input blocks encode as unit clauses.
  LutCircuit c(4, "const");
  c.add_pi("a");
  c.add_block({"one", {}, 1, false, false});
  c.add_block({"zero", {}, 0, false, false});
  EXPECT_TRUE(eval_encoded(c, Ref::block(0), {false}));
  EXPECT_FALSE(eval_encoded(c, Ref::block(1), {false}));
}

TEST(LutConeEncoder, SupportIsConeRestricted) {
  LutCircuit c(4, "supp");
  for (int i = 0; i < 4; ++i) c.add_pi("p" + std::to_string(i));
  c.add_block({"x", {Ref::pi(1), Ref::pi(3)}, 0b0110, false, false});
  c.add_block({"y", {Ref::block(0), Ref::pi(3)}, 0b1000, false, false});
  SatSolver solver;
  std::vector<Lit> pi_lits;
  for (int i = 0; i < 4; ++i) pi_lits.push_back(make_lit(solver.new_var()));
  LutConeEncoder encoder(c, solver, pi_lits);
  EXPECT_EQ(encoder.support(Ref::block(1)), (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(encoder.support(Ref::pi(2)), (std::vector<std::uint32_t>{2}));
}

TEST(LutConeEncoder, MiterOnIdenticalConesIsUnsat) {
  // Two structurally different implementations of XOR, mitered: UNSAT.
  LutCircuit c(4, "miter");
  c.add_pi("a");
  c.add_pi("b");
  c.add_block({"xor", {Ref::pi(0), Ref::pi(1)}, 0b0110, false, false});
  // (a OR b) AND NOT(a AND b) via one 2-LUT pair.
  c.add_block({"or", {Ref::pi(0), Ref::pi(1)}, 0b1110, false, false});
  c.add_block({"nand", {Ref::pi(0), Ref::pi(1)}, 0b0111, false, false});
  c.add_block({"xor2", {Ref::block(1), Ref::block(2)}, 0b1000, false, false});
  SatSolver solver;
  std::vector<Lit> pi_lits{make_lit(solver.new_var()),
                           make_lit(solver.new_var())};
  LutConeEncoder encoder(c, solver, pi_lits);
  const Lit y1 = encoder.encode(Ref::block(0));
  const Lit y2 = encoder.encode(Ref::block(3));
  solver.add_clause({y1, y2});
  solver.add_clause({lit_not(y1), lit_not(y2)});
  EXPECT_EQ(solver.solve(), SatResult::Unsat);
}

// ----------------------------------------------------- circuits used below

/// Two small sequential modes (XOR/AND vs OR/XOR with one FF each), mapped
/// through the real front end so the merge sees production-shaped input.
std::vector<LutCircuit> two_small_modes() {
  netlist::Netlist a("modeA");
  {
    const auto x = a.add_input("x");
    const auto y = a.add_input("y");
    const auto q = a.add_latch(netlist::kNoSignal, false, "q");
    a.set_latch_input(q, a.add_xor(x, q));
    a.add_output("o", a.add_and(q, y));
  }
  netlist::Netlist b("modeB");
  {
    const auto x = b.add_input("x");
    const auto y = b.add_input("y");
    const auto q = b.add_latch(netlist::kNoSignal, true, "q");
    b.set_latch_input(q, b.add_or(x, q));
    b.add_output("o", b.add_xor(q, y));
  }
  std::vector<LutCircuit> modes;
  modes.push_back(techmap::map_to_luts(aig::aig_from_netlist(a)));
  modes.back().set_name("modeA");
  modes.push_back(techmap::map_to_luts(aig::aig_from_netlist(b)));
  modes.back().set_name("modeB");
  return modes;
}

TunableCircuit merged(const std::vector<LutCircuit>& modes) {
  return TunableCircuit(modes, MergeAssignment::by_index(modes));
}

// ------------------------------------------------------------ configured_mode

TEST(ConfiguredMode, MatchesModeCircuitCycleByCycle) {
  const auto modes = two_small_modes();
  const TunableCircuit tc = merged(modes);
  for (int m = 0; m < 2; ++m) {
    const LutCircuit configured = configured_mode(tc, m);
    ASSERT_EQ(configured.num_pis(), modes[m].num_pis());
    ASSERT_EQ(configured.num_pos(), modes[m].num_pos());
    techmap::LutSimulator sim_mode(modes[m]);
    techmap::LutSimulator sim_conf(configured);
    Rng rng(99 + m);
    for (int cycle = 0; cycle < 32; ++cycle) {
      const auto words = testing::random_words(modes[m].num_pis(), rng);
      EXPECT_EQ(sim_mode.step(words), sim_conf.step(words)) << "cycle " << cycle;
    }
  }
}

TEST(ToNetlist, AgreesWithLutSimulatorOnEdgeCaseBlocks) {
  // Combinational circuit exercising the fallback path's corner cases:
  // 0-input constants, a K-saturated block, and duplicate fanins.
  LutCircuit c(4, "edges");
  for (int i = 0; i < 4; ++i) c.add_pi("p" + std::to_string(i));
  c.add_block({"one", {}, 1, false, false});
  c.add_block({"zero", {}, 0, false, false});
  c.add_block({"sat4",
               {Ref::pi(0), Ref::pi(1), Ref::pi(2), Ref::pi(3)},
               0x9669ULL,
               false,
               false});
  c.add_block({"dup", {Ref::pi(2), Ref::pi(2)}, 0b0110, false, false});
  c.add_block(
      {"mix", {Ref::block(0), Ref::block(2)}, 0b1000, false, false});
  c.add_po("o_one", Ref::block(0));
  c.add_po("o_zero", Ref::block(1));
  c.add_po("o_sat", Ref::block(2));
  c.add_po("o_dup", Ref::block(3));
  c.add_po("o_mix", Ref::block(4));
  c.add_po("o_pi", Ref::pi(1));

  const netlist::Netlist nl = to_netlist(c);
  netlist::Simulator nsim(nl);
  techmap::LutSimulator lsim(c);
  Rng rng(7);
  for (int round = 0; round < 16; ++round) {
    const auto words = testing::random_words(c.num_pis(), rng);
    EXPECT_EQ(nsim.eval_outputs(words), lsim.step(words));
  }
}

// ---------------------------------------------------------------- check_modes

TEST(CheckModes, ProvesCleanMergeViaSat) {
  const auto modes = two_small_modes();
  const TunableCircuit tc = merged(modes);
  perf::reset();
  VerifyOptions options;
  options.sim_cutoff = 0;  // force the SAT path everywhere
  const VerifyReport report = check_modes(tc, modes, options);
  EXPECT_TRUE(report.all_proven());
  for (const auto& mode : report.modes) {
    EXPECT_TRUE(mode.proven);
    EXPECT_FALSE(mode.cex.has_value());
  }
  EXPECT_GT(perf::counter_value("verify.sat_calls"), 0u);
  EXPECT_EQ(perf::counter_value("verify.sim_fallbacks"), 0u);
  EXPECT_EQ(perf::counter_value("verify.cex_found"), 0u);
}

TEST(CheckModes, SweepingCollapsesCleanMergeMitersConflictFree) {
  // On a healthy merge the internal equivalence sweep seeds every impl block
  // with its spec literal, so output miters are decided by propagation alone.
  const auto modes = two_small_modes();
  const TunableCircuit tc = merged(modes);
  perf::reset();
  VerifyOptions options;
  options.sim_cutoff = 0;  // force the SAT path everywhere
  EXPECT_TRUE(check_modes(tc, modes, options).all_proven());
  EXPECT_GT(perf::counter_value("verify.sat_calls"), 0u);
  EXPECT_EQ(perf::counter_value("verify.conflicts"), 0u);
}

TEST(CheckModes, ProvesCleanMergeViaExhaustiveSim) {
  const auto modes = two_small_modes();
  const TunableCircuit tc = merged(modes);
  perf::reset();
  VerifyOptions options;
  options.sim_cutoff = 16;  // small circuit: everything under the cutoff
  const VerifyReport report = check_modes(tc, modes, options);
  EXPECT_TRUE(report.all_proven());
  EXPECT_EQ(perf::counter_value("verify.sat_calls"), 0u);
  EXPECT_GT(perf::counter_value("verify.sim_fallbacks"), 0u);
}

TEST(CheckModes, SelfCheckOverloadUsesStoredModes) {
  const TunableCircuit tc = merged(two_small_modes());
  EXPECT_TRUE(check_modes(tc).all_proven());
}

TEST(CheckModes, VerdictsBitIdenticalAcrossReruns) {
  const auto modes = two_small_modes();
  TunableCircuit tc = merged(modes);
  // Corrupt the circuit so reports carry counterexamples, then compare two
  // independent runs field by field.
  const auto points = enumerate_mutation_points(tc);
  const auto it = std::find_if(points.begin(), points.end(), [&](const auto& p) {
    return mutation_is_observable(tc, modes, p);
  });
  ASSERT_NE(it, points.end());
  apply_mutation(tc, *it);

  for (const int cutoff : {0, 16}) {
    VerifyOptions options;
    options.sim_cutoff = cutoff;
    const VerifyReport r1 = check_modes(tc, modes, options);
    const VerifyReport r2 = check_modes(tc, modes, options);
    ASSERT_EQ(r1.modes.size(), r2.modes.size());
    for (std::size_t m = 0; m < r1.modes.size(); ++m) {
      EXPECT_EQ(r1.modes[m].proven, r2.modes[m].proven);
      EXPECT_EQ(r1.modes[m].detail, r2.modes[m].detail);
      ASSERT_EQ(r1.modes[m].cex.has_value(), r2.modes[m].cex.has_value());
      if (r1.modes[m].cex) {
        EXPECT_EQ(r1.modes[m].cex->output, r2.modes[m].cex->output);
        EXPECT_EQ(r1.modes[m].cex->inputs, r2.modes[m].cex->inputs);
        EXPECT_EQ(r1.modes[m].cex->spec_value, r2.modes[m].cex->spec_value);
        EXPECT_EQ(r1.modes[m].cex->impl_value, r2.modes[m].cex->impl_value);
      }
    }
    EXPECT_FALSE(r1.all_proven());
  }
}

// ------------------------------------------------- checker of the checker

/// Applies the first observable mutation of `kind` and asserts check_modes
/// FAILs exactly the mutated mode with a counterexample that replays under
/// netlist::Simulator — for both the SAT and the exhaustive-sim path.
void expect_mutation_caught(MutationKind kind) {
  const auto modes = two_small_modes();
  TunableCircuit tc = merged(modes);
  const auto points = enumerate_mutation_points(tc);
  std::optional<MutationPoint> chosen;
  for (const auto& point : points) {
    if (point.kind == kind && mutation_is_observable(tc, modes, point)) {
      chosen = point;
      break;
    }
  }
  ASSERT_TRUE(chosen.has_value()) << "no observable " << mutation_kind_name(kind);
  apply_mutation(tc, *chosen);

  for (const int cutoff : {0, 16}) {
    VerifyOptions options;
    options.sim_cutoff = cutoff;
    const VerifyReport report = check_modes(tc, modes, options);
    EXPECT_FALSE(report.all_proven()) << chosen->describe();
    for (const auto& mode : report.modes) {
      if (mode.mode == chosen->mode) {
        EXPECT_FALSE(mode.proven) << chosen->describe();
        ASSERT_TRUE(mode.cex.has_value()) << mode.detail;
        EXPECT_TRUE(replay_counterexample(tc, modes, *mode.cex))
            << chosen->describe() << " cutoff=" << cutoff;
      } else {
        EXPECT_TRUE(mode.proven) << "mutation leaked into mode " << mode.mode;
      }
    }
  }
}

TEST(MutationSuite, FlippedTruthBitYieldsReplayableCex) {
  expect_mutation_caught(MutationKind::FlipTruthBit);
}

TEST(MutationSuite, SwappedAssignmentYieldsReplayableCex) {
  expect_mutation_caught(MutationKind::SwapAssignment);
}

TEST(MutationSuite, DroppedActivationYieldsReplayableCex) {
  expect_mutation_caught(MutationKind::DropActivation);
}

TEST(MutationSuite, EnumerationCoversAllKindsDeterministically) {
  const TunableCircuit tc = merged(two_small_modes());
  const auto points = enumerate_mutation_points(tc);
  for (const MutationKind kind :
       {MutationKind::FlipTruthBit, MutationKind::SwapAssignment,
        MutationKind::DropActivation}) {
    EXPECT_TRUE(std::any_of(points.begin(), points.end(),
                            [&](const auto& p) { return p.kind == kind; }))
        << mutation_kind_name(kind);
  }
  const auto again = enumerate_mutation_points(tc);
  ASSERT_EQ(points.size(), again.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].kind, again[i].kind);
    EXPECT_EQ(points[i].mode, again[i].mode);
    EXPECT_EQ(points[i].a, again[i].a);
    EXPECT_EQ(points[i].b, again[i].b);
  }
}

TEST(MutationSuite, InjectionThroughFaultSite) {
  const auto modes = two_small_modes();
  TunableCircuit tc = merged(modes);
  faults::clear();
  faults::install(std::string(kMutateFaultSite) + "@1");
  const auto applied = inject_mutation(tc, modes);
  EXPECT_GE(faults::hits(kMutateFaultSite), 1u);
  faults::clear();
  ASSERT_TRUE(applied.has_value());

  const VerifyReport report = check_modes(tc, modes);
  EXPECT_FALSE(report.all_proven());
  const auto& failed = report.modes[static_cast<std::size_t>(applied->mode)];
  EXPECT_FALSE(failed.proven);
  ASSERT_TRUE(failed.cex.has_value());
  EXPECT_TRUE(replay_counterexample(tc, modes, *failed.cex));
}

TEST(MutationSuite, InjectionIsNoOpWhenSiteNotArmed) {
  const auto modes = two_small_modes();
  TunableCircuit tc = merged(modes);
  faults::clear();
  EXPECT_FALSE(inject_mutation(tc, modes).has_value());
  EXPECT_TRUE(check_modes(tc, modes).all_proven());
}

TEST(MutationSuite, DistinctFaultIndicesPickDistinctPoints) {
  const auto modes = two_small_modes();
  const auto points = enumerate_mutation_points(merged(modes));
  ASSERT_GT(points.size(), 8u);
  // Arming later indices starts the observability scan later, so injection
  // remains usable across the whole point space.
  std::optional<MutationPoint> first, later;
  {
    TunableCircuit tc = merged(modes);
    faults::clear();
    faults::install(std::string(kMutateFaultSite) + "@1");
    first = inject_mutation(tc, modes);
    faults::clear();
    EXPECT_FALSE(check_modes(tc, modes).all_proven());
  }
  {
    TunableCircuit tc = merged(modes);
    faults::clear();
    faults::install(std::string(kMutateFaultSite) + "@" +
                    std::to_string(points.size()));
    later = inject_mutation(tc, modes);
    faults::clear();
    EXPECT_FALSE(check_modes(tc, modes).all_proven());
  }
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(later.has_value());
}

}  // namespace
}  // namespace mmflow::verify

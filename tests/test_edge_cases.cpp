#include <gtest/gtest.h>

#include "aig/bridge.h"
#include "apps/fir/fir.h"
#include "apps/regexp/engine.h"
#include "apps/regexp/regex.h"
#include "arch/rrg.h"
#include "route/router.h"
#include "core/combined_place.h"
#include "helpers.h"
#include "netlist/blif.h"
#include "techmap/mapper.h"
#include "tunable/tunable_circuit.h"

namespace mmflow {
namespace {

// --------------------------------------------------------------- arch edges

TEST(EdgeCases, SmallestDevice) {
  arch::ArchSpec spec;
  spec.nx = 1;
  spec.ny = 1;
  spec.channel_width = 1;
  const arch::DeviceGrid grid(spec);
  EXPECT_EQ(grid.num_clb_sites(), 1);
  EXPECT_EQ(grid.num_pad_sites(), 4 * spec.io_capacity);
  const arch::RoutingGraph rrg(spec);
  EXPECT_NO_THROW(rrg.validate());
}

TEST(EdgeCases, NonSquareDeviceRrg) {
  arch::ArchSpec spec;
  spec.nx = 7;
  spec.ny = 2;
  spec.channel_width = 2;
  const arch::RoutingGraph rrg(spec);
  EXPECT_NO_THROW(rrg.validate());
  // Route across the long dimension.
  route::RouteProblem problem;
  route::RouteNet net;
  net.name = "span";
  net.source_node = rrg.clb_source(1, 1);
  net.conns.push_back(route::RouteConn{rrg.clb_sink(7, 2), 1});
  problem.nets.push_back(net);
  EXPECT_TRUE(route::route(rrg, problem).success);
}

// ------------------------------------------------------------ netlist edges

TEST(EdgeCases, SingleGateCircuitMapsAndPlaces) {
  netlist::Netlist nl("one");
  const auto a = nl.add_input("a");
  nl.add_output("y", nl.add_not(a));
  const auto mapped = techmap::map_to_luts(aig::aig_from_netlist(nl));
  EXPECT_EQ(mapped.num_blocks(), 1u);
  const auto pn = place::to_place_netlist(mapped);
  const arch::DeviceGrid grid(arch::size_device(1, 2, 1.2));
  place::PlacerOptions options;
  options.seed = 1;
  const auto placed = place::place(pn, grid, options);
  EXPECT_NO_THROW(placed.validate(pn));
}

TEST(EdgeCases, ConstantOnlyCircuit) {
  netlist::Netlist nl("const");
  nl.add_output("zero", nl.add_constant(false));
  nl.add_output("one", nl.add_constant(true));
  const auto mapped = techmap::map_to_luts(aig::aig_from_netlist(nl));
  mmflow::testing::expect_equivalent(nl, mapped, 4, 1);
}

TEST(EdgeCases, BlifUnnamedModelAndWhitespace) {
  const auto nl = netlist::parse_blif(
      ".model\n.inputs   a \t b\n.outputs y\n.names a b y\n11 1\n.end\n");
  EXPECT_EQ(nl.inputs().size(), 2u);
}

TEST(EdgeCases, BlifRoundTripRegexEngine) {
  // A full-size generated netlist survives the BLIF round trip unchanged.
  const auto nl = apps::regexp::regex_engine("ab(cd|ef){2,4}g+");
  const auto reparsed = netlist::parse_blif(netlist::write_blif(nl));
  mmflow::testing::expect_equivalent(nl, reparsed, 24, 77);
}

// ------------------------------------------------------------ tunable edges

TEST(EdgeCases, SingleModeTunableCircuit) {
  // Degenerate but legal: one mode merges into a Tunable circuit whose bits
  // are all static.
  techmap::LutCircuit a(4, "solo");
  a.add_pi("x");
  a.add_block({"l", {techmap::Ref::pi(0)}, 0b01, false, false});
  a.add_po("o", techmap::Ref::block(0));
  std::vector<techmap::LutCircuit> modes{a};
  const tunable::TunableCircuit tc(modes, tunable::MergeAssignment::by_index(modes));
  EXPECT_EQ(tc.parameterized_lut_bit_count(), 0u);
  for (const auto& conn : tc.conns()) {
    EXPECT_EQ(conn.activation, 0b1u);
  }
  const auto spec = tc.specialize(0);
  EXPECT_EQ(spec.num_blocks(), 1u);
}

TEST(EdgeCases, ModesOfVeryDifferentSizes) {
  // A 1-LUT mode merged with a 30-LUT mode: the small mode's TLUTs are
  // mostly single-mode; specialization still holds.
  Rng rng(5);
  netlist::Netlist big("big");
  std::vector<netlist::SignalId> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(big.add_input("i" + std::to_string(i)));
  for (int g = 0; g < 60; ++g) {
    pool.push_back(big.add_xor(pool[rng.next_below(pool.size())],
                               pool[rng.next_below(pool.size())]));
  }
  big.add_output("o", pool.back());

  netlist::Netlist small("small");
  const auto a = small.add_input("i0");
  const auto b = small.add_input("i1");
  small.add_output("o", small.add_and(a, b));

  std::vector<techmap::LutCircuit> modes{
      techmap::map_to_luts(aig::aig_from_netlist(big)),
      techmap::map_to_luts(aig::aig_from_netlist(small))};
  modes[0].set_name("big");
  modes[1].set_name("small");
  const tunable::TunableCircuit tc(modes, tunable::MergeAssignment::by_index(modes));
  for (int m = 0; m < 2; ++m) {
    const auto specialized = tc.specialize(m);
    techmap::LutSimulator sim_orig(modes[static_cast<std::size_t>(m)]);
    techmap::LutSimulator sim_spec(specialized);
    Rng stim(3u + static_cast<unsigned>(m));
    for (int cycle = 0; cycle < 8; ++cycle) {
      const auto words = mmflow::testing::random_words(
          modes[static_cast<std::size_t>(m)].num_pis(), stim);
      ASSERT_EQ(sim_orig.step(words), sim_spec.step(words));
    }
  }
}

// ---------------------------------------------------------------- fir edges

TEST(EdgeCases, FirSingleTap) {
  apps::fir::FirSpec spec;
  spec.taps = 1;
  spec.data_width = 4;
  spec.coeff_width = 4;
  apps::fir::FirCoeffs coeffs;
  coeffs.values = {-7};
  const auto expected =
      apps::fir::fir_reference(spec, coeffs, {1, 2, 3, 15});
  // y[n] = -7 * x[n] mod 2^W.
  const std::uint64_t mask = (1ull << spec.output_width()) - 1;
  EXPECT_EQ(expected[0], static_cast<std::uint64_t>(-7) & mask);
  EXPECT_EQ(expected[3], static_cast<std::uint64_t>(-105) & mask);
}

TEST(EdgeCases, FirRejectsBadCoefficients) {
  apps::fir::FirSpec spec;
  spec.taps = 2;
  spec.coeff_width = 3;
  apps::fir::FirCoeffs coeffs;
  coeffs.values = {9, 0};  // |9| >= 2^3
  EXPECT_THROW((void)apps::fir::coefficient_bindings(spec, coeffs),
               PreconditionError);
  coeffs.values = {1};  // wrong arity
  EXPECT_THROW((void)apps::fir::coefficient_bindings(spec, coeffs),
               PreconditionError);
}

// -------------------------------------------------------------- regex edges

TEST(EdgeCases, RegexSingleChar) {
  apps::regexp::StreamMatcher m("x");
  EXPECT_TRUE(m.search("axb"));
  EXPECT_FALSE(m.search("ab"));
}

TEST(EdgeCases, RegexHighBytes) {
  apps::regexp::StreamMatcher m("\\xff\\x00\\x80");
  std::string s;
  s.push_back(static_cast<char>(0xff));
  s.push_back('\0');
  s.push_back(static_cast<char>(0x80));
  EXPECT_TRUE(m.search(s));
}

TEST(EdgeCases, RegexOverlappingMatches) {
  // "aa" in "aaaa": matches at several offsets; streaming engine must fire.
  apps::regexp::StreamMatcher m("aa");
  int fires = 0;
  m.reset();
  for (const char c : std::string("aaaa")) {
    fires += m.feed(static_cast<unsigned char>(c)) ? 1 : 0;
  }
  fires += m.feed(0) ? 1 : 0;
  EXPECT_GE(fires, 3);  // matches ending at positions 2,3,4
}

// ----------------------------------------------------- combined place edges

TEST(EdgeCases, CombinedPlaceSingleMode) {
  // Degenerate single-mode combined placement reduces to normal placement.
  techmap::LutCircuit a(4, "solo");
  a.add_pi("x");
  a.add_block({"l0", {techmap::Ref::pi(0)}, 0b01, false, false});
  a.add_block({"l1", {techmap::Ref::block(0)}, 0b10, false, false});
  a.add_po("o", techmap::Ref::block(1));
  const arch::DeviceGrid grid(arch::size_device(4, 4, 1.5));
  core::CombinedPlaceOptions options;
  options.anneal.inner_num = 1.0;
  const auto cp = core::combined_place({a}, grid, options);
  EXPECT_NO_THROW(cp.placements[0].validate(cp.netlists[0]));
  EXPECT_EQ(core::matched_connections(cp, grid), 0u);
}

}  // namespace
}  // namespace mmflow

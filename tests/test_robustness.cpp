/// Fault-tolerance tests (docs/ROBUSTNESS.md): the deterministic fault
/// registry itself, cooperative cancellation/timeouts, retry healing to
/// bit-identical QoR, artifact-store degradation under injected I/O faults,
/// resumable sweeps via the run manifest, WorkerPool failure aggregation,
/// and BLIF front-end robustness against corrupted input.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "aig/bridge.h"
#include "apps/mcnc/mcnc.h"
#include "common/cancel.h"
#include "common/check.h"
#include "common/faults.h"
#include "common/parallel.h"
#include "common/perf.h"
#include "common/rng.h"
#include "core/artifact_store.h"
#include "core/batch.h"
#include "core/manifest.h"
#include "core/metrics.h"
#include "tune/knobs.h"
#include "tune/tuner.h"
#include "netlist/blif.h"
#include "techmap/mapper.h"

namespace mmflow {
namespace {

namespace fs = std::filesystem;

/// Every test that arms faults must disarm them — the registry is process
/// global and a leaked spec would fail unrelated tests downstream.
struct FaultsGuard {
  FaultsGuard() { faults::clear(); }
  ~FaultsGuard() { faults::clear(); }
};

/// Unique scratch directory, removed on destruction.
struct TempDir {
  fs::path path;

  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("mmflow_robust_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::uint64_t counter(const char* name) { return perf::counter_value(name); }

/// Small structurally similar mode pair (same recipe as test_batch.cpp).
std::vector<techmap::LutCircuit> similar_mode_pair(int num_gates,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  auto build = [&](bool variant, std::uint64_t vseed) {
    Rng vrng(vseed);
    netlist::Netlist nl(variant ? "modeB" : "modeA");
    std::vector<netlist::SignalId> pool;
    for (int i = 0; i < 6; ++i) {
      pool.push_back(nl.add_input("i" + std::to_string(i)));
    }
    Rng shared(seed * 7919);
    for (int g = 0; g < num_gates; ++g) {
      Rng& r = (g < num_gates * 3 / 4) ? shared : vrng;
      const auto a = pool[r.next_below(pool.size())];
      const auto b = pool[r.next_below(pool.size())];
      netlist::SignalId s = 0;
      switch (r.next_below(4)) {
        case 0: s = nl.add_and(a, b); break;
        case 1: s = nl.add_or(a, b); break;
        case 2: s = nl.add_xor(a, b); break;
        case 3: s = nl.add_nand(a, b); break;
      }
      pool.push_back(s);
    }
    for (int i = 0; i < 4; ++i) {
      nl.add_output("o" + std::to_string(i), pool[pool.size() - 1 - i]);
    }
    auto mapped = techmap::map_to_luts(aig::aig_from_netlist(nl));
    mapped.set_name(nl.name());
    return mapped;
  };
  std::vector<techmap::LutCircuit> modes;
  modes.push_back(build(false, rng()));
  modes.push_back(build(true, rng()));
  return modes;
}

core::FlowOptions fast_options(std::uint64_t seed) {
  core::FlowOptions options;
  options.cost_engine = core::CombinedCost::WireLength;
  options.seed = seed;
  options.anneal.inner_num = 2.0;  // keep tests quick
  return options;
}

/// Bit-level QoR equality: region, placements, routing and reconfiguration
/// metrics (the fields the chaos determinism criterion is stated over).
void expect_same_experiment(const core::MultiModeExperiment& a,
                            const core::MultiModeExperiment& b) {
  EXPECT_EQ(a.region.nx, b.region.nx);
  EXPECT_EQ(a.region.ny, b.region.ny);
  EXPECT_EQ(a.region.channel_width, b.region.channel_width);
  EXPECT_EQ(a.min_width, b.min_width);
  ASSERT_EQ(a.mdr.size(), b.mdr.size());
  for (std::size_t m = 0; m < a.mdr.size(); ++m) {
    ASSERT_EQ(a.mdr[m].placement.num_blocks(), b.mdr[m].placement.num_blocks());
    for (std::uint32_t blk = 0; blk < a.mdr[m].placement.num_blocks(); ++blk) {
      EXPECT_EQ(a.mdr[m].placement.site_of(blk),
                b.mdr[m].placement.site_of(blk));
    }
  }
  EXPECT_EQ(a.merged_connections, b.merged_connections);
  EXPECT_EQ(a.total_mode_connections, b.total_mode_connections);
  const auto ma = core::reconfig_metrics(a, bitstream::MuxEncoding::Binary);
  const auto mb = core::reconfig_metrics(b, bitstream::MuxEncoding::Binary);
  EXPECT_EQ(ma.mdr_bits, mb.mdr_bits);
  EXPECT_EQ(ma.dcs_bits, mb.dcs_bits);
  EXPECT_EQ(ma.diff_bits, mb.diff_bits);
}

/// Fires `site` `n` times and returns which hits threw.
std::vector<bool> fire_pattern(const char* site, int n) {
  std::vector<bool> fired;
  fired.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    try {
      faults::maybe_throw(site);
      fired.push_back(false);
    } catch (const faults::FaultInjected&) {
      fired.push_back(true);
    }
  }
  return fired;
}

// ---------------------------------------------------------------- faults --

TEST(Faults, DisabledIsInvisible) {
  FaultsGuard guard;
  EXPECT_FALSE(faults::enabled());
  for (int i = 0; i < 100; ++i) faults::maybe_throw("store.read");
  EXPECT_EQ(faults::hits("store.read"), 0u);  // not even counted
}

TEST(Faults, NthHitFiresExactlyOnce) {
  FaultsGuard guard;
  faults::install("x@3");
  EXPECT_TRUE(faults::enabled());
  const auto fired = fire_pattern("x", 6);
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(faults::hits("x"), 6u);
  // Unarmed sites pass through untouched.
  EXPECT_NO_THROW(faults::maybe_throw("y"));
}

TEST(Faults, FromNthFiresForever) {
  FaultsGuard guard;
  faults::install("x@2*");
  const auto fired = fire_pattern("x", 5);
  EXPECT_EQ(fired, (std::vector<bool>{false, true, true, true, true}));
}

TEST(Faults, ProbabilityFormIsDeterministic) {
  FaultsGuard guard;
  faults::install("x~0.3/42");
  const auto first = fire_pattern("x", 200);
  faults::install("x~0.3/42");  // reinstall resets hit counters
  const auto second = fire_pattern("x", 200);
  EXPECT_EQ(first, second);  // same seed, same site, same hits -> same coins
  const auto fired = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fired, 0);    // P(0 of 200 at p=0.3) ~ 1e-31
  EXPECT_LT(fired, 200);

  faults::install("x~0/1");
  const auto never = fire_pattern("x", 50);
  EXPECT_EQ(std::count(never.begin(), never.end(), true), 0);
  faults::install("x~1/1");
  const auto always = fire_pattern("x", 10);
  EXPECT_EQ(std::count(always.begin(), always.end(), true), 10);
}

TEST(Faults, MultiTermSpecsAndClear) {
  FaultsGuard guard;
  faults::install(" a@1 , b~0.5/9 ");
  EXPECT_THROW(faults::maybe_throw("a"), faults::FaultInjected);
  EXPECT_NO_THROW(faults::maybe_throw("c"));
  (void)fire_pattern("b", 3);
  EXPECT_EQ(faults::hits("b"), 3u);  // armed sites count every hit
  faults::clear();
  EXPECT_FALSE(faults::enabled());
  EXPECT_NO_THROW(faults::maybe_throw("a"));
}

TEST(Faults, MalformedSpecsAreRejected) {
  FaultsGuard guard;
  EXPECT_THROW(faults::install("x"), PreconditionError);       // no trigger
  EXPECT_THROW(faults::install("x@0"), PreconditionError);     // 1-based
  EXPECT_THROW(faults::install("x@abc"), PreconditionError);   // not a number
  EXPECT_THROW(faults::install("x~0.5"), PreconditionError);   // missing /SEED
  EXPECT_THROW(faults::install("x~2/1"), PreconditionError);   // P > 1
  EXPECT_THROW(faults::install("@1"), PreconditionError);      // empty site
  EXPECT_FALSE(faults::enabled());  // a rejected spec arms nothing
}

// ---------------------------------------------------------------- cancel --

TEST(Cancel, TokenLifecycle) {
  CancelToken token;
  EXPECT_NO_THROW(token.poll());
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.poll(), CancelledError);

  CancelToken timed;
  timed.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_TRUE(timed.expired());
  EXPECT_THROW(timed.poll(), TimeoutError);

  // Cancellation wins when both apply.
  timed.cancel();
  EXPECT_THROW(timed.poll(), CancelledError);

  // Null-token idiom used at every injection point.
  EXPECT_NO_THROW(poll_cancel(nullptr));
}

TEST(Cancel, ChildSeesParentTrip) {
  CancelToken parent;
  CancelToken child(&parent);
  EXPECT_NO_THROW(child.poll());
  parent.cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_THROW(child.poll(), CancelledError);

  CancelToken parent2;
  CancelToken child2(&parent2);
  parent2.set_deadline(std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1));
  EXPECT_THROW(child2.poll(), TimeoutError);
}

// ----------------------------------------------------- store degradation --

/// A read fault on a warm persistent cache degrades to a counted invalid
/// miss — the flow recomputes and the QoR is bit-identical.
TEST(Robustness, StoreReadFaultHealsBitIdentically) {
  FaultsGuard guard;
  TempDir dir;
  const auto modes = similar_mode_pair(40, 11);
  const auto options = fast_options(3);

  core::FlowCache cold_cache;
  cold_cache.attach_store(std::make_shared<core::ArtifactStore>(dir.path));
  core::FlowContext cold_ctx;
  cold_ctx.cache = &cold_cache;
  const auto cold = core::run_experiment(modes, options, cold_ctx);

  // Fresh "process": every load goes to disk, and every load fails.
  faults::install("store.read@1*");
  core::FlowCache warm_cache;
  warm_cache.attach_store(std::make_shared<core::ArtifactStore>(dir.path));
  core::FlowContext warm_ctx;
  warm_ctx.cache = &warm_cache;
  const auto invalid_before = counter("flowcache.disk_invalid");
  const auto warm = core::run_experiment(modes, options, warm_ctx);
  EXPECT_GT(counter("flowcache.disk_invalid"), invalid_before);
  EXPECT_GT(counter("faults.injected"), 0u);
  expect_same_experiment(cold, warm);
}

/// Write faults never escape the store: commits report failure, the counter
/// records them, and the flow's result is unaffected.
TEST(Robustness, StoreWriteFaultDegradesToCounter) {
  FaultsGuard guard;
  TempDir dir;
  const auto modes = similar_mode_pair(40, 13);
  const auto options = fast_options(5);

  const auto clean = core::run_experiment(modes, options);

  faults::install("store.write@1*");
  core::FlowCache cache;
  cache.attach_store(std::make_shared<core::ArtifactStore>(dir.path));
  core::FlowContext ctx;
  ctx.cache = &cache;
  const auto errors_before = counter("flowcache.disk_write_errors");
  const auto faulted = core::run_experiment(modes, options, ctx);
  EXPECT_GT(counter("flowcache.disk_write_errors"), errors_before);
  expect_same_experiment(clean, faulted);

  // Nothing landed on disk: a fresh store over the directory sees no
  // partial entries (only, at most, the subdirectory skeleton).
  core::ArtifactStore store(dir.path);
  EXPECT_EQ(store.size(), 0u);
}

// --------------------------------------------------------- batch healing --

TEST(Robustness, RetryHealsInjectedFaultBitIdentically) {
  FaultsGuard guard;
  const auto modes = similar_mode_pair(40, 17);
  const auto options = fast_options(7);
  const auto clean = core::run_experiment(modes, options);

  faults::install("batch.job@1");  // first attempt dies, retry heals
  core::BatchOptions batch_options;
  batch_options.max_retries = 1;
  core::BatchDriver driver(batch_options);
  const auto retries_before = counter("batch.retries");
  const auto results = driver.run(core::seed_sweep(
      "heal", std::make_shared<const std::vector<techmap::LutCircuit>>(modes),
      options, 1));
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].experiment != nullptr) << results[0].error;
  EXPECT_EQ(results[0].outcome.status, core::JobStatus::Ok);
  EXPECT_EQ(results[0].outcome.retries, 1);
  EXPECT_EQ(counter("batch.retries"), retries_before + 1);
  expect_same_experiment(clean, *results[0].experiment);
}

TEST(Robustness, RetriesExhaustedReportsFailureKind) {
  FaultsGuard guard;
  faults::install("batch.job@1*");  // every attempt dies
  const auto modes = similar_mode_pair(40, 19);
  core::BatchOptions batch_options;
  batch_options.max_retries = 2;
  core::BatchDriver driver(batch_options);
  const auto results = driver.run(core::seed_sweep(
      "dead", std::make_shared<const std::vector<techmap::LutCircuit>>(modes),
      fast_options(1), 1));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].experiment, nullptr);
  EXPECT_EQ(results[0].outcome.status, core::JobStatus::Failed);
  EXPECT_EQ(results[0].outcome.error_kind, "fault_injected");
  EXPECT_EQ(results[0].outcome.retries, 2);
  EXPECT_FALSE(results[0].error.empty());
}

/// A per-job deadline lands as a reported TimedOut outcome; the batch still
/// returns a slot for every job instead of aborting the sweep.
TEST(Robustness, JobTimeoutIsReportedNotFatal) {
  const auto modes = similar_mode_pair(60, 23);
  core::BatchOptions batch_options;
  batch_options.job_timeout_ms = 1;  // annealing takes far longer than 1 ms
  core::BatchDriver driver(batch_options);
  const auto timeouts_before = counter("batch.timeouts");
  const auto results = driver.run(core::seed_sweep(
      "slow", std::make_shared<const std::vector<techmap::LutCircuit>>(modes),
      fast_options(1), 2));
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    EXPECT_EQ(result.experiment, nullptr);
    EXPECT_EQ(result.outcome.status, core::JobStatus::TimedOut);
    EXPECT_EQ(result.outcome.error_kind, "timeout");
  }
  EXPECT_GE(counter("batch.timeouts"), timeouts_before + 2);
}

/// A pre-tripped batch-wide token cancels every job at its first poll;
/// cancelled jobs never retry and nothing is written to the store.
TEST(Robustness, CancellationLeavesNoPartialCacheWrites) {
  TempDir dir;
  const auto modes = similar_mode_pair(40, 29);
  CancelToken stop;
  stop.cancel();
  core::BatchOptions batch_options;
  batch_options.cancel = &stop;
  batch_options.max_retries = 3;  // must be ignored for cancellation
  batch_options.cache_dir = dir.path.string();
  core::BatchDriver driver(batch_options);
  const auto writes_before = counter("flowcache.disk_writes");
  const auto cancelled_before = counter("batch.cancelled");
  const auto results = driver.run(core::seed_sweep(
      "stop", std::make_shared<const std::vector<techmap::LutCircuit>>(modes),
      fast_options(1), 2));
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    EXPECT_EQ(result.experiment, nullptr);
    EXPECT_EQ(result.outcome.status, core::JobStatus::Cancelled);
    EXPECT_EQ(result.outcome.error_kind, "cancelled");
    EXPECT_EQ(result.outcome.retries, 0);
  }
  EXPECT_EQ(counter("batch.cancelled"), cancelled_before + 2);
  EXPECT_EQ(counter("flowcache.disk_writes"), writes_before);
  core::ArtifactStore store(dir.path);
  EXPECT_EQ(store.size(), 0u);  // no partial artifacts
  core::RunManifest manifest(core::RunManifest::default_path(dir.path));
  EXPECT_EQ(manifest.size(), 0u);  // no completion records either
}

/// Broken cache directory (path occupied by a file): the sweep completes
/// with correct results, write failures land in the counter.
TEST(Robustness, BrokenCacheDirDegradesGracefully) {
  TempDir dir;
  const fs::path bogus = dir.path / "not_a_directory";
  std::ofstream(bogus) << "occupied";

  const auto modes = similar_mode_pair(40, 31);
  const auto options = fast_options(9);
  const auto clean = core::run_experiment(modes, options);

  core::BatchOptions batch_options;
  batch_options.cache_dir = bogus.string();
  core::BatchDriver driver(batch_options);
  const auto errors_before = counter("flowcache.disk_write_errors");
  const auto results = driver.run(core::seed_sweep(
      "broken",
      std::make_shared<const std::vector<techmap::LutCircuit>>(modes), options,
      1));
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].experiment != nullptr) << results[0].error;
  EXPECT_EQ(results[0].outcome.status, core::JobStatus::Ok);
  EXPECT_GT(counter("flowcache.disk_write_errors"), errors_before);
  expect_same_experiment(clean, *results[0].experiment);
}

// ---------------------------------------------------------------- resume --

TEST(Robustness, ResumeSkipsManifestKeysAndMatchesUninterruptedRun) {
  TempDir dir;
  const auto modes = similar_mode_pair(40, 37);
  const auto shared =
      std::make_shared<const std::vector<techmap::LutCircuit>>(modes);
  const auto base = fast_options(1);

  // Reference: an uninterrupted 4-seed sweep with no cache at all.
  core::BatchDriver plain;
  const auto reference = plain.run(core::seed_sweep("r", shared, base, 4));

  // "First process": completes only the first two seeds, then dies.
  {
    core::BatchOptions batch_options;
    batch_options.cache_dir = dir.path.string();
    core::BatchDriver driver(batch_options);
    const auto partial = driver.run(core::seed_sweep("r", shared, base, 2));
    ASSERT_TRUE(partial[0].experiment && partial[1].experiment);
    ASSERT_NE(driver.manifest(), nullptr);
    EXPECT_EQ(driver.manifest()->size(), 2u);
  }

  // "Second process": resumes the full 4-seed sweep over the same dir.
  core::BatchOptions batch_options;
  batch_options.cache_dir = dir.path.string();
  batch_options.resume = true;
  core::BatchDriver driver(batch_options);
  const auto skips_before = counter("batch.manifest_skips");
  const auto hits_before = counter("flowcache.disk_hits");
  const auto results = driver.run(core::seed_sweep("r", shared, base, 4));

  ASSERT_EQ(results.size(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(results[s].experiment != nullptr) << results[s].error;
    EXPECT_EQ(results[s].outcome.status, core::JobStatus::Ok);
    EXPECT_EQ(results[s].outcome.manifest_skip, s < 2);  // only seeds 1, 2
    expect_same_experiment(*reference[s].experiment, *results[s].experiment);
  }
  EXPECT_EQ(counter("batch.manifest_skips"), skips_before + 2);
  EXPECT_GT(counter("flowcache.disk_hits"), hits_before);  // replayed, not
                                                           // recomputed
  EXPECT_EQ(driver.manifest()->size(), 4u);  // now everything is recorded
}

TEST(Manifest, RecordsPersistAndTornLinesAreSkipped) {
  TempDir dir;
  const auto path = core::RunManifest::default_path(dir.path);
  core::FlowKey key;
  key.netlist = 0x1111;
  key.arch = 0x2222;
  key.options = 0x3333;
  key.seed = 42;
  key.engine = 2;
  key.variant = 0x4444;
  core::FlowKey other = key;
  other.seed = 43;
  {
    core::RunManifest manifest(path);
    EXPECT_EQ(manifest.size(), 0u);
    EXPECT_FALSE(manifest.contains(key));
    manifest.record(key);
    manifest.record(key);  // idempotent
    EXPECT_TRUE(manifest.contains(key));
    EXPECT_EQ(manifest.size(), 1u);
  }
  // Simulate a record torn by a kill plus unrelated garbage.
  {
    std::ofstream os(path, std::ios::app);
    os << "mmflow-run-v1 00000000000";  // truncated mid-field, no newline
  }
  {
    core::RunManifest reloaded(path);
    EXPECT_TRUE(reloaded.contains(key));
    EXPECT_FALSE(reloaded.contains(other));
    EXPECT_EQ(reloaded.size(), 1u);
    reloaded.record(other);  // appending after garbage still works
  }
  core::RunManifest final_state(path);
  EXPECT_TRUE(final_state.contains(key));
  EXPECT_TRUE(final_state.contains(other));
  EXPECT_EQ(final_state.size(), 2u);
}

// ------------------------------------------------------------ workerpool --

TEST(WorkerPoolAggregation, AllItemsRunAndAllFailuresAreCollected) {
  parallel::WorkerPool pool(3);
  std::atomic<int> executed{0};
  try {
    pool.run(8, [&](std::size_t item, int) {
      executed.fetch_add(1);
      if (item == 1) throw std::runtime_error("boom one");
      if (item == 4) throw std::invalid_argument("boom four");
      if (item == 6) throw std::runtime_error("boom six");
    });
    FAIL() << "expected AggregateError";
  } catch (const parallel::AggregateError& e) {
    ASSERT_EQ(e.failures().size(), 3u);
    EXPECT_EQ(e.failures()[0].item, 1u);  // sorted by item index
    EXPECT_EQ(e.failures()[1].item, 4u);
    EXPECT_EQ(e.failures()[2].item, 6u);
    EXPECT_NE(e.failures()[1].message.find("boom four"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("3 of 8 items failed"),
              std::string::npos);
  }
  // The batch still ran *every* item, including those after the failures.
  EXPECT_EQ(executed.load(), 8);
}

TEST(WorkerPoolAggregation, SingleFailureRethrowsOriginalType) {
  parallel::WorkerPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.run(5,
                        [&](std::size_t item, int) {
                          executed.fetch_add(1);
                          if (item == 2) throw std::invalid_argument("only");
                        }),
               std::invalid_argument);
  EXPECT_EQ(executed.load(), 5);
}

// ------------------------------------------------------------------ blif --

TEST(BlifRobustness, ErrorsCarrySourceAndLine) {
  const std::string text =
      ".model top\n"
      ".inputs a b\n"
      ".outputs y\n"
      ".names a b y\n"
      "11 2\n"  // '2' is not a valid output bit
      ".end\n";
  try {
    (void)netlist::parse_blif(text, "top.blif");
    FAIL() << "expected BlifParseError";
  } catch (const netlist::BlifParseError& e) {
    EXPECT_EQ(e.source(), "top.blif");
    EXPECT_EQ(e.line(), 5);
    EXPECT_NE(std::string(e.what()).find("top.blif:5:"), std::string::npos);
  }
}

TEST(BlifRobustness, DuplicateDefinitionIsLocatedParseError) {
  const std::string text =
      ".model top\n"
      ".inputs a b\n"
      ".outputs y z\n"
      ".names a b y\n"
      "11 1\n"
      ".names a y\n"  // redefines input 'a'
      "1 1\n"
      ".names b z\n"
      "1 1\n"
      ".end\n";
  try {
    (void)netlist::parse_blif(text);
    FAIL() << "expected BlifParseError";
  } catch (const netlist::BlifParseError& e) {
    EXPECT_EQ(e.line(), 6);
    EXPECT_NE(std::string(e.what()).find("already defined"), std::string::npos);
  }
}

TEST(BlifRobustness, UnreadableFileIsParseErrorNamingThePath) {
  try {
    (void)netlist::read_blif_file("/nonexistent/nope.blif");
    FAIL() << "expected BlifParseError";
  } catch (const netlist::BlifParseError& e) {
    EXPECT_EQ(e.source(), "/nonexistent/nope.blif");
    EXPECT_EQ(e.line(), 0);  // whole-file problem
  }
}

TEST(BlifRobustness, InjectedIngestionFaultSurfacesAtReadTime) {
  FaultsGuard guard;
  TempDir dir;
  const fs::path path = dir.path / "ok.blif";
  std::ofstream(path) << ".model m\n.inputs a\n.outputs y\n"
                         ".names a y\n1 1\n.end\n";
  faults::install("blif.parse@1");
  EXPECT_THROW((void)netlist::read_blif_file(path.string()),
               faults::FaultInjected);
  faults::clear();
  EXPECT_NO_THROW((void)netlist::read_blif_file(path.string()));
}

/// Corruption sweep: no truncation or byte garbling of a valid BLIF may
/// escape the parser as anything but a (located) ParseError — in particular
/// never a precondition/invariant abort from the netlist builder.
TEST(BlifRobustness, CorruptedInputsNeverEscapeAsNonParseErrors) {
  apps::mcnc::SyntheticSpec spec;
  spec.num_gates = 60;
  spec.num_registers = 4;
  spec.seed = 3;
  const std::string good = netlist::write_blif(apps::mcnc::synthetic_circuit(spec));
  ASSERT_NO_THROW((void)netlist::parse_blif(good));

  auto expect_parse_or_ok = [](const std::string& text, const char* label) {
    try {
      (void)netlist::parse_blif(text, label);
    } catch (const ParseError&) {
      // expected failure mode (BlifParseError is a ParseError)
    } catch (const std::exception& e) {
      FAIL() << label << ": leaked non-ParseError: " << e.what();
    }
  };

  // Truncations at every 7th byte (covers mid-token, mid-line, mid-cube).
  for (std::size_t cut = 0; cut < good.size(); cut += 7) {
    expect_parse_or_ok(good.substr(0, cut),
                       ("truncate@" + std::to_string(cut)).c_str());
  }
  // Byte garbling: overwrite one byte with hostile characters.
  Rng rng(99);
  for (const char evil : {'\0', '2', '~', '.', ' ', '\\'}) {
    for (int i = 0; i < 40; ++i) {
      std::string bad = good;
      bad[rng.next_below(bad.size())] = evil;
      expect_parse_or_ok(bad, "garble");
    }
  }
  // Structured corruption: duplicated and deleted logical lines.
  const auto nl_pos = good.find('\n', good.find(".names"));
  ASSERT_NE(nl_pos, std::string::npos);
  std::string doubled = good;
  doubled.insert(nl_pos + 1, good.substr(good.find(".names"),
                                         nl_pos + 1 - good.find(".names")));
  expect_parse_or_ok(doubled, "doubled-names");
}


// ------------------------------------------------------------- tune chaos --

/// Chaos criterion for the autotuner: a full tune under injected job and
/// store-write faults, healed by retries, must produce the *same front
/// bits* as a clean run — the tuner's determinism contract survives the
/// fault-tolerance machinery end to end (docs/TUNING.md).
TEST(Robustness, ChaosTuneMatchesCleanFrontBitIdentically) {
  FaultsGuard guard;
  const std::vector<tune::TuneBenchmark> benchmarks{tune::TuneBenchmark{
      "chaos", std::make_shared<const std::vector<techmap::LutCircuit>>(
                   similar_mode_pair(40, 61))}};
  tune::TuneOptions options;
  options.seed = 9;
  options.budget = 4;
  options.base = fast_options(1);
  options.space = tune::KnobSpace::from_spec(
      "astar_fac=1.0:1.6,align_discount=0.1:1.0", "test");

  const auto clean = tune::tune(benchmarks, options);
  ASSERT_FALSE(clean.front.empty());

  // Chaos run: the 2nd batch job attempt dies once, and *every* store
  // write fails; retries heal the former, the store degrades to counters
  // for the latter. Jobs > 1 so the faults land on worker threads.
  TempDir dir;
  faults::install("batch.job@2,store.write@1*");
  tune::TuneOptions chaos_options = options;
  chaos_options.cache_dir = dir.path.string();
  chaos_options.jobs = 2;
  chaos_options.max_retries = 2;
  const auto injected_before = counter("faults.injected");
  const auto chaos = tune::tune(benchmarks, chaos_options);
  EXPECT_GT(counter("faults.injected"), injected_before);

  ASSERT_EQ(clean.front.size(), chaos.front.size());
  for (std::size_t i = 0; i < clean.front.size(); ++i) {
    EXPECT_EQ(clean.front[i].index, chaos.front[i].index);
    EXPECT_EQ(clean.front[i].knob_values, chaos.front[i].knob_values);
    EXPECT_EQ(clean.front[i].objectives, chaos.front[i].objectives);
  }
  ASSERT_EQ(clean.trials.size(), chaos.trials.size());
  for (std::size_t i = 0; i < clean.trials.size(); ++i) {
    EXPECT_EQ(clean.trials[i].index, chaos.trials[i].index);
    EXPECT_EQ(clean.trials[i].ok, chaos.trials[i].ok);
    EXPECT_EQ(clean.trials[i].objectives, chaos.trials[i].objectives);
  }
}

}  // namespace
}  // namespace mmflow

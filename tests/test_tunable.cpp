#include <gtest/gtest.h>

#include "aig/bridge.h"
#include "helpers.h"
#include "techmap/mapper.h"
#include "tunable/modefunc.h"
#include "tunable/tunable_circuit.h"

namespace mmflow::tunable {
namespace {

// ---------------------------------------------------------------- ModeFunction

TEST(ModeFunction, Basics) {
  const ModeFunction f(3, 0b101);
  EXPECT_TRUE(f.eval(0));
  EXPECT_FALSE(f.eval(1));
  EXPECT_TRUE(f.eval(2));
  EXPECT_FALSE(f.is_constant());
  EXPECT_TRUE(ModeFunction::constant(3, true).is_constant());
  EXPECT_TRUE(ModeFunction::constant(3, true).constant_value());
  EXPECT_FALSE(ModeFunction::constant(3, false).constant_value());
}

TEST(ModeFunction, OrAndMergeActivations) {
  const ModeFunction a(2, 0b01);
  const ModeFunction b(2, 0b10);
  EXPECT_TRUE((a | b).is_constant());
  EXPECT_TRUE((a | b).constant_value());
  EXPECT_TRUE((a & b).is_constant());
  EXPECT_FALSE((a & b).constant_value());
}

TEST(ModeFunction, SopTwoModes) {
  // Two modes: one mode bit m0. Paper Fig. 3: m0 + !m0 = 1.
  EXPECT_EQ(ModeFunction(2, 0b10).to_sop(), "m0");
  EXPECT_EQ(ModeFunction(2, 0b01).to_sop(), "!m0");
  EXPECT_EQ(ModeFunction(2, 0b11).to_sop(), "1");
  EXPECT_EQ(ModeFunction(2, 0b00).to_sop(), "0");
}

TEST(ModeFunction, SopFourModes) {
  // Four modes, bits m1 m0.
  EXPECT_EQ(ModeFunction(4, 0b0100).to_sop(), "m1.!m0");  // mode 2 only
  EXPECT_EQ(ModeFunction(4, 0b1100).to_sop(), "m1");      // modes 2,3
  EXPECT_EQ(ModeFunction(4, 0b1010).to_sop(), "m0");      // modes 1,3
  EXPECT_EQ(ModeFunction(4, 0b1111).to_sop(), "1");
  // XOR-like: modes 1 and 2 -> no single-cube cover.
  const std::string sop = ModeFunction(4, 0b0110).to_sop();
  EXPECT_TRUE(sop == "!m1.m0 + m1.!m0" || sop == "m1.!m0 + !m1.m0") << sop;
}

TEST(ModeFunction, SopUsesInvalidCodesAsDontCares) {
  // 3 modes: code 3 is a don't-care, so {mode 1} can print as plain m0
  // (covering invalid code 3 for free)? No: {1} with DC {3} -> cube !m1.m0
  // or m0 (covers 1 and 3). Minimal is "m0".
  EXPECT_EQ(ModeFunction(3, 0b010).to_sop(), "m0");
  // {2} with DC {3} -> "m1".
  EXPECT_EQ(ModeFunction(3, 0b100).to_sop(), "m1");
  // {1,2} needs two cubes even with the don't-care.
  const std::string sop = ModeFunction(3, 0b110).to_sop();
  EXPECT_TRUE(sop.find('+') != std::string::npos) << sop;
}

TEST(ModeFunction, ModeProduct) {
  EXPECT_EQ(ModeFunction::mode_product(2, 0), "!m0");
  EXPECT_EQ(ModeFunction::mode_product(2, 1), "m0");
  EXPECT_EQ(ModeFunction::mode_product(4, 2), "m1.!m0");
  EXPECT_EQ(ModeFunction::mode_product(3, 2), "m1.!m0");
}

TEST(QmMinimize, CoversExactlyOnSet) {
  // Property: for random on-sets/dc-sets, the SOP covers every on-set
  // minterm and no off-set minterm.
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const int vars = 1 + static_cast<int>(rng.next_below(4));
    const std::uint32_t universe = (1u << (1 << vars)) - 1;
    const std::uint32_t onset = static_cast<std::uint32_t>(rng()) & universe;
    const std::uint32_t dc = static_cast<std::uint32_t>(rng()) & universe & ~onset;
    const auto cubes = qm_minimize(vars, onset, dc);
    for (int m = 0; m < (1 << vars); ++m) {
      const bool covered =
          std::any_of(cubes.begin(), cubes.end(), [&](const ModeCube& c) {
            return c.covers(static_cast<std::uint32_t>(m));
          });
      if ((onset >> m) & 1) {
        EXPECT_TRUE(covered) << "minterm " << m << " uncovered";
      } else if (!((dc >> m) & 1)) {
        EXPECT_FALSE(covered) << "off-set minterm " << m << " covered";
      }
    }
  }
}

TEST(QmMinimize, KnownMinimalForms) {
  // f = m1 + m0 over 2 vars: onset {1,2,3}.
  const auto cubes = qm_minimize(2, 0b1110, 0);
  EXPECT_EQ(cubes.size(), 2u);
  for (const auto& c : cubes) EXPECT_EQ(std::popcount(c.care), 1);
}

// ------------------------------------------------------------- TunableCircuit

/// Tiny two-mode pair used across the merge tests.
std::vector<techmap::LutCircuit> two_small_modes() {
  netlist::Netlist a("modeA");
  {
    const auto x = a.add_input("x");
    const auto y = a.add_input("y");
    const auto q = a.add_latch(netlist::kNoSignal, false, "q");
    a.set_latch_input(q, a.add_xor(x, q));
    a.add_output("o", a.add_and(q, y));
  }
  netlist::Netlist b("modeB");
  {
    const auto x = b.add_input("x");
    const auto y = b.add_input("y");
    const auto q = b.add_latch(netlist::kNoSignal, true, "q");
    b.set_latch_input(q, b.add_or(x, q));
    b.add_output("o", b.add_xor(q, y));
  }
  std::vector<techmap::LutCircuit> modes;
  modes.push_back(techmap::map_to_luts(aig::aig_from_netlist(a)));
  modes.back().set_name("modeA");
  modes.push_back(techmap::map_to_luts(aig::aig_from_netlist(b)));
  modes.back().set_name("modeB");
  return modes;
}

TEST(MergeAssignment, ByIndexShapes) {
  const auto modes = two_small_modes();
  const auto assignment = MergeAssignment::by_index(modes);
  EXPECT_EQ(assignment.lut_to_tlut.size(), 2u);
  EXPECT_GE(assignment.num_tluts,
            std::max(modes[0].num_blocks(), modes[1].num_blocks()));
  EXPECT_EQ(assignment.num_tios,
            std::max(modes[0].num_pis(), modes[1].num_pis()) +
                std::max(modes[0].num_pos(), modes[1].num_pos()));
}

TEST(TunableCircuit, MergeByIndexStructure) {
  auto modes = two_small_modes();
  const auto assignment = MergeAssignment::by_index(modes);
  const TunableCircuit tc(modes, assignment);
  tc.validate();

  EXPECT_EQ(tc.num_modes(), 2);
  // Total per-mode connections is at least the merged connection count.
  EXPECT_GE(tc.total_mode_connections(), tc.conns().size());
  // Every net's connections share the net's source.
  for (const auto& net : tc.nets()) {
    for (const auto c : net.conns) {
      EXPECT_TRUE(tc.conns()[c].source == net.source);
    }
  }
}

TEST(TunableCircuit, SpecializationRoundTrip) {
  auto modes = two_small_modes();
  const auto assignment = MergeAssignment::by_index(modes);
  const TunableCircuit tc(modes, assignment);
  for (int m = 0; m < 2; ++m) {
    const auto specialized = tc.specialize(m);
    // Same interface and behaviour as the original mode circuit.
    ASSERT_EQ(specialized.num_pis(), modes[m].num_pis());
    ASSERT_EQ(specialized.num_pos(), modes[m].num_pos());

    techmap::LutSimulator sim_orig(modes[m]);
    techmap::LutSimulator sim_spec(specialized);
    Rng rng(123 + m);
    for (int cycle = 0; cycle < 64; ++cycle) {
      const auto words = mmflow::testing::random_words(modes[m].num_pis(), rng);
      EXPECT_EQ(sim_orig.step(words), sim_spec.step(words))
          << "mode " << m << " cycle " << cycle;
    }
  }
}

TEST(TunableCircuit, ParameterizedBitsFig4Semantics) {
  // Build the paper's Fig. 4 example: two 2-LUTs merged into one TLUT.
  // Mode 0 LUT truth 1001 (XNOR), mode 1 truth 1000 (AND) over the same
  // input sources -> bit 3 (highest) is m0.1 + !m0.1 ... depends on bits.
  techmap::LutCircuit a(2, "a");
  const auto ax = a.add_pi("x");
  const auto ay = a.add_pi("y");
  a.add_block({"l", {techmap::Ref::pi(ax), techmap::Ref::pi(ay)}, 0b1001, false, false});
  a.add_po("o", techmap::Ref::block(0));

  techmap::LutCircuit b(2, "b");
  const auto bx = b.add_pi("x");
  const auto by = b.add_pi("y");
  b.add_block({"l", {techmap::Ref::pi(bx), techmap::Ref::pi(by)}, 0b1000, false, false});
  b.add_po("o", techmap::Ref::block(0));

  std::vector<techmap::LutCircuit> modes{a, b};
  const TunableCircuit tc(modes, MergeAssignment::by_index(modes));
  const auto bits = tc.parameterized_bits(0);
  ASSERT_EQ(bits.size(), 5u);  // 4 truth bits + FF select (k=2)
  // Truth bit 0: mode0=1, mode1=0 -> "!m0".
  EXPECT_EQ(bits[0].to_sop(), "!m0");
  // Bit 1 and 2: both 0 -> "0".
  EXPECT_EQ(bits[1].to_sop(), "0");
  EXPECT_EQ(bits[2].to_sop(), "0");
  // Bit 3: both 1 -> "1" (static).
  EXPECT_EQ(bits[3].to_sop(), "1");
  // FF unused in both modes.
  EXPECT_EQ(bits[4].to_sop(), "0");
  EXPECT_EQ(tc.parameterized_lut_bit_count(), 1u);
}

TEST(TunableCircuit, MatchedConnectionsMerge) {
  // Identical circuits in both modes with index merge: every connection
  // matches, activation becomes constant-true.
  techmap::LutCircuit a(4, "a");
  const auto ax = a.add_pi("x");
  a.add_block({"l0", {techmap::Ref::pi(ax)}, 0b01, false, false});
  a.add_block({"l1", {techmap::Ref::block(0)}, 0b10, false, false});
  a.add_po("o", techmap::Ref::block(1));
  std::vector<techmap::LutCircuit> modes{a, a};
  const TunableCircuit tc(modes, MergeAssignment::by_index(modes));
  EXPECT_EQ(tc.conns().size(), tc.total_mode_connections() / 2);
  for (const auto& conn : tc.conns()) {
    EXPECT_EQ(conn.activation, 0b11u);
  }
  EXPECT_EQ(tc.num_merged_connections(), tc.conns().size());
  EXPECT_EQ(tc.parameterized_lut_bit_count(), 0u);
}

TEST(TunableCircuit, PinSharingKeepsMatchedSourcesOnOnePin) {
  // Both modes read sources (P0, P1); mode order differs. The pin
  // assignment should still share pins per source.
  techmap::LutCircuit a(4, "a");
  a.add_pi("p");
  a.add_pi("q");
  a.add_block({"l", {techmap::Ref::pi(0), techmap::Ref::pi(1)}, 0b0110, false, false});
  a.add_po("o", techmap::Ref::block(0));

  techmap::LutCircuit b(4, "b");
  b.add_pi("p");
  b.add_pi("q");
  b.add_block({"l", {techmap::Ref::pi(1), techmap::Ref::pi(0)}, 0b0110, false, false});
  b.add_po("o", techmap::Ref::block(0));

  std::vector<techmap::LutCircuit> modes{a, b};
  const TunableCircuit tc(modes, MergeAssignment::by_index(modes));
  const auto& pins = tc.pins(0);
  // Each used pin must carry the same source in both modes.
  for (int p = 0; p < 4; ++p) {
    if (pins.pin_used[p] == 0b11u) {
      EXPECT_TRUE(pins.pin_source[p][0] == pins.pin_source[p][1]);
    }
  }
  // XOR is symmetric, so the permuted truths agree -> no parameterized bits.
  EXPECT_EQ(tc.parameterized_lut_bit_count(), 0u);
}

TEST(TunableCircuit, RejectsTwoLutsOfSameModeOnOneTlut) {
  techmap::LutCircuit a(4, "a");
  a.add_pi("x");
  a.add_block({"l0", {techmap::Ref::pi(0)}, 0b01, false, false});
  a.add_block({"l1", {techmap::Ref::pi(0)}, 0b10, false, false});
  a.add_po("o", techmap::Ref::block(1));
  MergeAssignment assignment;
  assignment.num_tluts = 1;
  assignment.num_tios = 2;
  assignment.lut_to_tlut = {{0, 0}};  // both LUTs on TLUT 0: illegal
  assignment.pi_to_tio = {{0}};
  assignment.po_to_tio = {{1}};
  std::vector<techmap::LutCircuit> modes{a};
  EXPECT_THROW(TunableCircuit(modes, assignment), PreconditionError);
}

TEST(TunableCircuit, ThreeModesActivationFunctions) {
  // Three copies of a tiny circuit; connection activations are constant 1,
  // rendered over 2 mode bits with code 3 as don't-care.
  techmap::LutCircuit a(4, "a");
  a.add_pi("x");
  a.add_block({"l", {techmap::Ref::pi(0)}, 0b01, false, false});
  a.add_po("o", techmap::Ref::block(0));
  std::vector<techmap::LutCircuit> modes{a, a, a};
  const TunableCircuit tc(modes, MergeAssignment::by_index(modes));
  for (const auto& conn : tc.conns()) {
    const ModeFunction f(3, conn.activation);
    EXPECT_EQ(f.to_sop(), "1");
  }
}

TEST(TunableCircuit, RandomMergeSpecializationProperty) {
  // Property: for random mode pairs and a *random* (legal) assignment,
  // specialization recovers each mode's behaviour.
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    auto modes = two_small_modes();
    // Random permutation-based assignment: TLUT count = max blocks + slack.
    const std::uint32_t num_tluts =
        static_cast<std::uint32_t>(
            std::max(modes[0].num_blocks(), modes[1].num_blocks())) +
        2;
    MergeAssignment assignment;
    assignment.num_tluts = num_tluts;
    for (const auto& mode : modes) {
      std::vector<std::uint32_t> perm(num_tluts);
      for (std::uint32_t i = 0; i < num_tluts; ++i) perm[i] = i;
      shuffle(perm, rng);
      perm.resize(mode.num_blocks());
      assignment.lut_to_tlut.push_back(perm);
    }
    const std::uint32_t num_tios = static_cast<std::uint32_t>(
        std::max(modes[0].num_pis() + modes[0].num_pos(),
                 modes[1].num_pis() + modes[1].num_pos()) + 2);
    assignment.num_tios = num_tios;
    for (const auto& mode : modes) {
      std::vector<std::uint32_t> perm(num_tios);
      for (std::uint32_t i = 0; i < num_tios; ++i) perm[i] = i;
      shuffle(perm, rng);
      assignment.pi_to_tio.push_back(std::vector<std::uint32_t>(
          perm.begin(), perm.begin() + mode.num_pis()));
      assignment.po_to_tio.push_back(std::vector<std::uint32_t>(
          perm.begin() + mode.num_pis(),
          perm.begin() + mode.num_pis() + mode.num_pos()));
    }
    const TunableCircuit tc(modes, assignment);
    for (int m = 0; m < 2; ++m) {
      const auto specialized = tc.specialize(m);
      techmap::LutSimulator sim_orig(modes[m]);
      techmap::LutSimulator sim_spec(specialized);
      Rng stim(trial * 7 + m);
      for (int cycle = 0; cycle < 32; ++cycle) {
        const auto words =
            mmflow::testing::random_words(modes[m].num_pis(), stim);
        ASSERT_EQ(sim_orig.step(words), sim_spec.step(words));
      }
    }
  }
}

}  // namespace
}  // namespace mmflow::tunable

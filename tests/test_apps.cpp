#include <gtest/gtest.h>

#include "aig/bridge.h"
#include "apps/fir/fir.h"
#include "apps/mcnc/mcnc.h"
#include "apps/regexp/engine.h"
#include "apps/regexp/regex.h"
#include "apps/suites.h"
#include <fstream>

#include "common/stats.h"
#include "helpers.h"
#include "netlist/blif.h"
#include "techmap/mapper.h"

namespace mmflow::apps {
namespace {

// ------------------------------------------------------------------ regexp

TEST(RegexParse, Errors) {
  using regexp::parse_regex;
  EXPECT_THROW((void)parse_regex(""), ParseError);
  EXPECT_THROW((void)parse_regex("a)"), ParseError);
  EXPECT_THROW((void)parse_regex("(a"), ParseError);
  EXPECT_THROW((void)parse_regex("*a"), ParseError);
  EXPECT_THROW((void)parse_regex("a{3,1}"), ParseError);
  EXPECT_THROW((void)parse_regex("[]"), ParseError);
  EXPECT_THROW((void)parse_regex("[z-a]"), ParseError);
  EXPECT_THROW((void)parse_regex("a*"), ParseError);   // matches empty
  EXPECT_THROW((void)parse_regex("a?"), ParseError);   // matches empty
  EXPECT_THROW((void)parse_regex("^abc"), ParseError); // anchors unsupported
  EXPECT_NO_THROW((void)parse_regex("a+"));
}

struct MatchCase {
  const char* pattern;
  const char* text;
  bool expected;
};

class StreamMatcherTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(StreamMatcherTest, SearchSemantics) {
  const MatchCase& c = GetParam();
  regexp::StreamMatcher matcher(c.pattern);
  EXPECT_EQ(matcher.search(c.text), c.expected)
      << "pattern '" << c.pattern << "' on '" << c.text << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StreamMatcherTest,
    ::testing::Values(
        MatchCase{"abc", "xxabcxx", true}, MatchCase{"abc", "abx", false},
        MatchCase{"a+b", "caaab", true}, MatchCase{"a+b", "cb", false},
        MatchCase{"ab|cd", "zcdz", true}, MatchCase{"ab|cd", "zadz", false},
        MatchCase{"[0-9]{3}", "ab123", true},
        MatchCase{"[0-9]{3}", "ab12x3", false},
        MatchCase{"a[^x]c", "ayc", true}, MatchCase{"a[^x]c", "axc", false},
        MatchCase{"a.c", "a\nc abc", true},  // '.' skips newline, abc matches
        MatchCase{"(ab){2,3}", "zababz", true},
        MatchCase{"(ab){2,3}", "zabz", false},
        MatchCase{"colou?r", "color", true},
        MatchCase{"colou?r", "colouur", false},
        MatchCase{"\\d+\\.\\d+", "v1.25", true},
        MatchCase{"\\x41\\x42", "xABy", true},
        MatchCase{"a{2,}", "xaaay", true}, MatchCase{"a{4,}", "xaaay", false},
        MatchCase{"GET /[a-z]+\\.php", "GET /index.php HTTP", true}));

TEST(RegexEngine, HardwareMatchesSoftwareOnCorpus) {
  // Property: for every rule, the mapped hardware engine and the software
  // matcher agree cycle for cycle on random byte streams seeded with
  // rule-relevant fragments.
  for (const auto& rule : regexp::bleeding_edge_style_rules()) {
    const auto nl = regexp::regex_engine(rule);
    const auto mapped = techmap::map_to_luts(aig::aig_from_netlist(nl));
    techmap::LutSimulator hw(mapped);
    regexp::StreamMatcher sw(rule);

    Rng rng(0xfeedULL + rule.size());
    std::string stream;
    for (int i = 0; i < 600; ++i) {
      const auto r = rng.next_below(100);
      if (r < 55) {
        stream.push_back(static_cast<char>('a' + rng.next_below(26)));
      } else if (r < 70) {
        stream.push_back(static_cast<char>('0' + rng.next_below(10)));
      } else if (r < 85) {
        stream.push_back(static_cast<char>(rng.next_below(256)));
      } else {
        // Inject rule-ish fragments to exercise partial matches.
        static const char* frags[] = {"GET /", "../", "union", "select",
                                      "NICK ", "\x90\x90\x90\x90", "Basic ",
                                      "\r\n"};
        stream += frags[rng.next_below(8)];
      }
    }

    for (std::size_t t = 0; t < stream.size(); ++t) {
      const auto c = static_cast<unsigned char>(stream[t]);
      std::vector<std::uint64_t> in_bits(8);
      for (int b = 0; b < 8; ++b) {
        in_bits[b] = ((c >> b) & 1) ? ~std::uint64_t{0} : 0;
      }
      const bool hw_match = hw.step(in_bits)[0] & 1;
      const bool sw_match = sw.feed(c);
      ASSERT_EQ(hw_match, sw_match)
          << "rule '" << rule << "' cycle " << t;
    }
  }
}

TEST(RegexEngine, SizesMatchTableOne) {
  // Table I RegExp row: min 224, avg 243, max 261 4-LUTs. Allow a modest
  // band around it (different mapper, same ballpark).
  mmflow::Summary sizes;
  for (const auto& rule : regexp::bleeding_edge_style_rules()) {
    const auto mapped =
        techmap::map_to_luts(aig::aig_from_netlist(regexp::regex_engine(rule)));
    sizes.add(static_cast<double>(mapped.num_blocks()));
  }
  EXPECT_GE(sizes.min(), 200);
  EXPECT_LE(sizes.max(), 290);
  EXPECT_NEAR(sizes.mean(), 243, 30);
}

TEST(RegexEngine, SharedClassesShareDecoders) {
  regexp::EngineStats stats;
  const auto nl = regexp::regex_engine("[a-z]{40}", &stats);
  EXPECT_EQ(stats.num_positions, 40u);
  EXPECT_EQ(stats.num_classes, 1u);
  // One decoder for all 40 positions: gate count far below 40x decoder size.
  EXPECT_LT(nl.num_gates(), 40u + 3u * 40u);
}

// -------------------------------------------------------------------- fir

TEST(Fir, ReferenceMatchesHardwareGeneric) {
  fir::FirSpec spec;
  spec.taps = 4;
  spec.data_width = 4;
  spec.coeff_width = 3;
  const auto nl = fir::generic_fir(spec);

  fir::FirCoeffs coeffs;
  coeffs.values = {3, -5, 0, 7};

  // Bind coefficients through the *inputs* (no constant propagation) so the
  // generic datapath itself is validated.
  netlist::Simulator sim(nl);
  Rng rng(42);
  const int W = spec.output_width();

  std::vector<std::uint32_t> samples;
  std::vector<std::uint64_t> outputs;
  for (int t = 0; t < 40; ++t) {
    const auto x = static_cast<std::uint32_t>(
        rng.next_below(1u << spec.data_width));
    samples.push_back(x);
    std::vector<std::uint64_t> in;
    for (const auto sig : nl.inputs()) {
      const std::string& name = nl.signal(sig).name;
      std::uint64_t value = 0;
      if (name[0] == 'x') {
        const int bit = std::stoi(name.substr(1));
        value = (x >> bit) & 1 ? ~std::uint64_t{0} : 0;
      } else {
        const std::size_t mpos = name.find('m');
        const int k = std::stoi(name.substr(1, name.find_first_not_of(
                                                   "0123456789", 1) - 1));
        const int coeff = coeffs.values[static_cast<std::size_t>(k)];
        if (name.back() == 's' && mpos == std::string::npos) {
          value = coeff < 0 ? ~std::uint64_t{0} : 0;
        } else {
          const int bit = std::stoi(name.substr(mpos + 1));
          value = (static_cast<unsigned>(std::abs(coeff)) >> bit) & 1
                      ? ~std::uint64_t{0}
                      : 0;
        }
      }
      in.push_back(value);
    }
    const auto out = sim.step(in);
    std::uint64_t y = 0;
    for (int b = 0; b < W; ++b) y |= (out[static_cast<std::size_t>(b)] & 1) << b;
    outputs.push_back(y);
  }

  const auto expected = fir::fir_reference(spec, coeffs, samples);
  for (std::size_t t = 0; t < samples.size(); ++t) {
    ASSERT_EQ(outputs[t], expected[t]) << "sample " << t;
  }
}

TEST(Fir, SpecializedMatchesReference) {
  const fir::FirSpec spec = suite_fir_spec();
  for (const auto kind : {fir::FilterKind::LowPass, fir::FilterKind::HighPass}) {
    const auto coeffs = fir::random_coefficients(spec, kind, 7, 0.7);
    const auto specialized = techmap::map_to_luts(aig::aig_from_netlist(
        fir::generic_fir(spec), fir::coefficient_bindings(spec, coeffs)));

    techmap::LutSimulator sim(specialized);
    Rng rng(9);
    std::vector<std::uint32_t> samples;
    std::vector<std::uint64_t> outputs;
    const int W = spec.output_width();
    for (int t = 0; t < 64; ++t) {
      const auto x = static_cast<std::uint32_t>(
          rng.next_below(1u << spec.data_width));
      samples.push_back(x);
      std::vector<std::uint64_t> in(specialized.num_pis());
      for (std::size_t i = 0; i < specialized.num_pis(); ++i) {
        const std::string& name = specialized.pi_names()[i];
        MMFLOW_CHECK(name[0] == 'x');
        const int bit = std::stoi(name.substr(1));
        in[i] = (x >> bit) & 1 ? ~std::uint64_t{0} : 0;
      }
      const auto out = sim.step(in);
      // Outputs are named y0..y{W-1} but may be permuted; index by name.
      std::uint64_t y = 0;
      for (std::size_t o = 0; o < specialized.num_pos(); ++o) {
        const int bit = std::stoi(specialized.pos()[o].name.substr(1));
        y |= (out[o] & 1) << bit;
      }
      outputs.push_back(y);
      (void)W;
    }
    const auto expected = fir::fir_reference(spec, coeffs, samples);
    for (std::size_t t = 0; t < samples.size(); ++t) {
      ASSERT_EQ(outputs[t], expected[t])
          << (kind == fir::FilterKind::LowPass ? "LP" : "HP") << " sample " << t;
    }
  }
}

TEST(Fir, SpecializedIsRoughlyThreeTimesSmaller) {
  // Paper: "Such a FIR filter is 3 times smaller than the generic version."
  const std::size_t generic = generic_fir_luts();
  SuiteOptions options;
  options.limit_pairs = 4;
  mmflow::Summary ratio;
  for (const auto& bench : fir_suite(options)) {
    for (const auto& mode : bench.modes) {
      ratio.add(static_cast<double>(generic) /
                static_cast<double>(mode.num_blocks()));
    }
  }
  EXPECT_GT(ratio.mean(), 2.0);
  EXPECT_LT(ratio.mean(), 6.0);
}

TEST(Fir, CoefficientStructure) {
  const fir::FirSpec spec = suite_fir_spec();
  const auto lp = fir::random_coefficients(spec, fir::FilterKind::LowPass, 3);
  for (const int v : lp.values) EXPECT_GE(v, 0);
  const auto hp = fir::random_coefficients(spec, fir::FilterKind::HighPass, 3);
  for (std::size_t k = 0; k < hp.values.size(); ++k) {
    if (k % 2 == 1) {
      EXPECT_LE(hp.values[k], 0);
    } else {
      EXPECT_GE(hp.values[k], 0);
    }
  }
  // All-zero draws are repaired.
  const auto sparse =
      fir::random_coefficients(spec, fir::FilterKind::LowPass, 11, 0.01);
  EXPECT_TRUE(std::any_of(sparse.values.begin(), sparse.values.end(),
                          [](int v) { return v != 0; }));
}

// -------------------------------------------------------------------- mcnc

TEST(Mcnc, SyntheticCircuitIsValidAndSequential) {
  mcnc::SyntheticSpec spec;
  spec.num_gates = 200;
  spec.seed = 5;
  const auto nl = mcnc::synthetic_circuit(spec);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.num_latches(), static_cast<std::size_t>(spec.num_registers));
  EXPECT_EQ(nl.inputs().size(), static_cast<std::size_t>(spec.num_inputs));
  // Simulates without issue.
  netlist::Simulator sim(nl);
  Rng rng(1);
  for (int t = 0; t < 8; ++t) {
    (void)sim.step(mmflow::testing::random_words(nl.inputs().size(), rng));
  }
}

TEST(Mcnc, SizedCalibrationHitsTargets) {
  for (const int target : {150, 264, 404}) {
    const auto circuit = mcnc::sized_synthetic_circuit(target, 17);
    const auto size = static_cast<double>(circuit.num_blocks());
    EXPECT_NEAR(size, target, target * 0.12) << "target " << target;
  }
}

TEST(Mcnc, CloneSizesMatchTableOne) {
  const auto& sizes = mcnc::paper_clone_sizes();
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_EQ(*std::min_element(sizes.begin(), sizes.end()), 264);
  EXPECT_EQ(*std::max_element(sizes.begin(), sizes.end()), 404);
  int sum = 0;
  for (const int s : sizes) sum += s;
  EXPECT_EQ(sum / 5, 310);
}

TEST(Mcnc, BlifLoadPath) {
  const std::string path = ::testing::TempDir() + "/mm_test.blif";
  {
    netlist::Netlist nl("tiny");
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    nl.add_output("y", nl.add_xor(a, b));
    std::ofstream out(path);
    out << netlist::write_blif(nl);
  }
  const auto modes = mcnc::load_blif_modes({path, path});
  ASSERT_EQ(modes.size(), 2u);
  EXPECT_GE(modes[0].num_blocks(), 1u);
}

// ------------------------------------------------------------------- suites

TEST(Suites, PairCountsMatchPaper) {
  SuiteOptions options;
  options.limit_pairs = 2;  // shape check without the full build cost
  EXPECT_EQ(regexp_suite(options).size(), 2u);
  EXPECT_EQ(fir_suite(options).size(), 2u);
  EXPECT_EQ(mcnc_suite(options).size(), 2u);
  for (const auto& bench : regexp_suite(options)) {
    EXPECT_EQ(bench.modes.size(), 2u);
  }
}

}  // namespace
}  // namespace mmflow::apps

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"

namespace mmflow {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int bound : {1, 2, 3, 10, 1000}) {
    for (int i = 0; i < 1000; ++i) {
      const auto v = rng.next_below(static_cast<std::uint64_t>(bound));
      EXPECT_LT(v, static_cast<std::uint64_t>(bound));
    }
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, PreconditionViolationThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), PreconditionError);
  EXPECT_THROW(rng.next_int(3, 2), PreconditionError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Summary, MinMeanMaxStddev) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.118, 1e-3);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_THROW((void)s.mean(), PreconditionError);
  EXPECT_THROW((void)s.min(), PreconditionError);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_THROW((void)median({}), PreconditionError);
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  a b\t c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, SplitChar) {
  const auto parts = split_char("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, FormatHelpers) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(-1000), "-1,000");
  EXPECT_EQ(with_thousands(12), "12");
}

TEST(Strings, ParseIntAcceptsWholeNumbers) {
  EXPECT_EQ(parse_int("42", "knob"), 42);
  EXPECT_EQ(parse_int("-7", "knob"), -7);
  EXPECT_EQ(parse_int("  13  ", "knob"), 13);  // surrounding whitespace ok
  EXPECT_EQ(parse_int("0", "knob"), 0);
}

TEST(Strings, ParseIntRejectsGarbageAndTrailingJunk) {
  // The regression that motivated the checked parsers: std::atoi silently
  // read all of these as 0 (--jobs=abc meant zero workers).
  EXPECT_THROW(parse_int("abc", "--jobs"), PreconditionError);
  EXPECT_THROW(parse_int("4x", "--jobs"), PreconditionError);
  EXPECT_THROW(parse_int("1.5", "--jobs"), PreconditionError);
  EXPECT_THROW(parse_int("", "--jobs"), PreconditionError);
  EXPECT_THROW(parse_int("   ", "--jobs"), PreconditionError);
  EXPECT_THROW(parse_int("999999999999999999999", "--jobs"),
               PreconditionError);  // out of range
  // The error names the offending knob.
  try {
    parse_int("abc", "--jobs");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("--jobs"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
  }
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0", "seed"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615", "seed"),
            18446744073709551615ULL);
  EXPECT_THROW(parse_u64("-1", "seed"), PreconditionError);
  EXPECT_THROW(parse_u64("18446744073709551616", "seed"), PreconditionError);
  EXPECT_THROW(parse_u64("12three", "seed"), PreconditionError);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("1.5", "lambda"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-0.25", "lambda"), -0.25);
  EXPECT_DOUBLE_EQ(parse_double("2e3", "lambda"), 2000.0);
  EXPECT_THROW(parse_double("x", "lambda"), PreconditionError);
  EXPECT_THROW(parse_double("1.5q", "lambda"), PreconditionError);
  EXPECT_THROW(parse_double("", "lambda"), PreconditionError);
  // Non-finite knob values are meaningless everywhere they are used.
  EXPECT_THROW(parse_double("nan", "lambda"), PreconditionError);
  EXPECT_THROW(parse_double("inf", "lambda"), PreconditionError);
}

TEST(Strings, TryParseIntIsNonThrowingButJustAsStrict) {
  // Record-log loaders (run manifest, tune ledger) treat a malformed field
  // as a torn line to skip, not a caller error — same strictness as
  // parse_int, bool instead of throw.
  int value = -1;
  EXPECT_TRUE(try_parse_int("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(try_parse_int(" -7 ", &value));
  EXPECT_EQ(value, -7);
  EXPECT_FALSE(try_parse_int("abc", &value));
  EXPECT_FALSE(try_parse_int("4x", &value));
  EXPECT_FALSE(try_parse_int("", &value));
  EXPECT_FALSE(try_parse_int("999999999999999999999", &value));
  EXPECT_EQ(value, -7);  // failures never clobber the output
}

TEST(Strings, TryParseHexAcceptsBareHexOnly) {
  std::uint64_t u64 = 0;
  EXPECT_TRUE(try_parse_hex_u64("00000000000000ff", &u64));
  EXPECT_EQ(u64, 0xffu);
  EXPECT_TRUE(try_parse_hex_u64("FFFFFFFFFFFFFFFF", &u64));
  EXPECT_EQ(u64, ~std::uint64_t{0});
  // The manifest writes fixed-width %016x fields: no 0x prefix, no sign,
  // no junk. Everything else marks the record torn.
  EXPECT_FALSE(try_parse_hex_u64("0xff", &u64));
  EXPECT_FALSE(try_parse_hex_u64("-1", &u64));
  EXPECT_FALSE(try_parse_hex_u64("ff ff", &u64));
  EXPECT_FALSE(try_parse_hex_u64("", &u64));
  EXPECT_FALSE(try_parse_hex_u64("10000000000000000", &u64));  // 65 bits

  std::uint32_t u32 = 0;
  EXPECT_TRUE(try_parse_hex_u32("0000beef", &u32));
  EXPECT_EQ(u32, 0xbeefu);
  EXPECT_FALSE(try_parse_hex_u32("100000000", &u32));  // 33 bits
  EXPECT_FALSE(try_parse_hex_u32("beefs", &u32));
}

TEST(Check, ThrowsExpectedTypes) {
  EXPECT_THROW(MMFLOW_CHECK(false), InternalError);
  EXPECT_THROW(MMFLOW_REQUIRE(false), PreconditionError);
  EXPECT_NO_THROW(MMFLOW_CHECK(true));
}

}  // namespace
}  // namespace mmflow

#include <gtest/gtest.h>

#include "aig/bridge.h"
#include "core/combined_place.h"
#include "core/flows.h"
#include "core/metrics.h"
#include "helpers.h"
#include "techmap/mapper.h"

namespace mmflow::core {
namespace {

/// Generates a pair of structurally similar mode circuits (like the paper's
/// mode pairs): a base random circuit plus a variant sharing most logic.
std::vector<techmap::LutCircuit> similar_mode_pair(int num_gates,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  auto build = [&](bool variant, std::uint64_t vseed) {
    Rng vrng(vseed);
    netlist::Netlist nl(variant ? "modeB" : "modeA");
    std::vector<netlist::SignalId> pool;
    for (int i = 0; i < 6; ++i) {
      pool.push_back(nl.add_input("i" + std::to_string(i)));
    }
    Rng shared(seed * 7919);  // identical gate choices for the common prefix
    for (int g = 0; g < num_gates; ++g) {
      // The last quarter of the gates differs between the modes.
      Rng& r = (g < num_gates * 3 / 4) ? shared : vrng;
      const auto a = pool[r.next_below(pool.size())];
      const auto b = pool[r.next_below(pool.size())];
      netlist::SignalId s = 0;
      switch (r.next_below(4)) {
        case 0: s = nl.add_and(a, b); break;
        case 1: s = nl.add_or(a, b); break;
        case 2: s = nl.add_xor(a, b); break;
        case 3: s = nl.add_nand(a, b); break;
      }
      pool.push_back(s);
    }
    for (int i = 0; i < 4; ++i) {
      nl.add_output("o" + std::to_string(i), pool[pool.size() - 1 - i]);
    }
    auto mapped = techmap::map_to_luts(aig::aig_from_netlist(nl));
    mapped.set_name(nl.name());
    return mapped;
  };
  std::vector<techmap::LutCircuit> modes;
  modes.push_back(build(false, rng()));
  modes.push_back(build(true, rng()));
  return modes;
}

FlowOptions fast_options(CombinedCost cost, std::uint64_t seed) {
  FlowOptions options;
  options.cost_engine = cost;
  options.seed = seed;
  options.anneal.inner_num = 2.0;  // keep tests quick
  return options;
}

TEST(CombinedPlace, LegalAndImprovesWirelength) {
  const auto modes = similar_mode_pair(60, 11);
  const arch::DeviceGrid grid(arch::size_device(
      static_cast<int>(std::max(modes[0].num_blocks(), modes[1].num_blocks())),
      20, 1.3));

  CombinedPlaceOptions options;
  options.cost = CombinedCost::WireLength;
  options.seed = 4;
  options.anneal.inner_num = 2.0;
  CombinedPlaceStats stats;
  const CombinedPlacement cp = combined_place(modes, grid, options, &stats);

  for (std::size_t m = 0; m < cp.netlists.size(); ++m) {
    EXPECT_NO_THROW(cp.placements[m].validate(cp.netlists[m]));
  }
  EXPECT_LT(stats.final_cost, stats.initial_cost);
  // The incremental cost must agree with the from-scratch recomputation.
  EXPECT_NEAR(merged_wirelength_cost(cp, grid), stats.final_cost, 1e-6);
}

TEST(CombinedPlace, EdgeMatchCostConsistent) {
  const auto modes = similar_mode_pair(50, 23);
  const arch::DeviceGrid grid(arch::size_device(
      static_cast<int>(std::max(modes[0].num_blocks(), modes[1].num_blocks())),
      20, 1.3));

  CombinedPlaceOptions options;
  options.cost = CombinedCost::EdgeMatch;
  options.seed = 9;
  options.anneal.inner_num = 2.0;
  CombinedPlaceStats stats;
  const CombinedPlacement cp = combined_place(modes, grid, options, &stats);
  // Final cost is -(matches); verify against the from-scratch count.
  EXPECT_NEAR(-static_cast<double>(matched_connections(cp, grid)),
              stats.final_cost, 1e-9);
  // Similar circuits must yield a healthy number of matches.
  EXPECT_GT(matched_connections(cp, grid), 0u);
}

TEST(CombinedPlace, EdgeMatchBeatsRandomOnMatches) {
  const auto modes = similar_mode_pair(50, 31);
  const arch::DeviceGrid grid(arch::size_device(
      static_cast<int>(std::max(modes[0].num_blocks(), modes[1].num_blocks())),
      20, 1.3));

  // Random combined placement (no annealing).
  CombinedPlacement random_cp;
  Rng rng(1);
  for (const auto& mode : modes) {
    place::LutPlaceMapping mapping;
    random_cp.netlists.push_back(place::to_place_netlist(mode, &mapping));
    random_cp.mappings.push_back(mapping);
  }
  for (const auto& nl : random_cp.netlists) {
    random_cp.placements.push_back(place::random_placement(nl, grid, rng));
  }

  CombinedPlaceOptions options;
  options.cost = CombinedCost::EdgeMatch;
  options.seed = 10;
  options.anneal.inner_num = 2.0;
  const CombinedPlacement optimized = combined_place(modes, grid, options);

  EXPECT_GT(matched_connections(optimized, grid),
            matched_connections(random_cp, grid));
}

TEST(ExtractMerge, CoLocationDefinesTluts) {
  const auto modes = similar_mode_pair(40, 41);
  const arch::DeviceGrid grid(arch::size_device(
      static_cast<int>(std::max(modes[0].num_blocks(), modes[1].num_blocks())),
      20, 1.3));
  CombinedPlaceOptions options;
  options.anneal.inner_num = 1.0;
  const CombinedPlacement cp = combined_place(modes, grid, options);
  const ExtractedMerge merge = extract_merge(cp, grid);

  // Blocks co-located across modes share a TLUT; blocks at distinct sites
  // never share one.
  for (std::size_t m = 0; m < modes.size(); ++m) {
    for (std::uint32_t lut = 0; lut < modes[m].num_blocks(); ++lut) {
      const auto t = merge.assignment.lut_to_tlut[m][lut];
      const arch::Site s = cp.placements[m].site_of(cp.mappings[m].lut_block(lut));
      EXPECT_TRUE(merge.tlut_site[t] == s);
    }
  }
  // The merged circuit specializes back to each mode's behaviour.
  const tunable::TunableCircuit tc(modes, merge.assignment);
  for (int m = 0; m < 2; ++m) {
    const auto specialized = tc.specialize(m);
    techmap::LutSimulator sim_orig(modes[m]);
    techmap::LutSimulator sim_spec(specialized);
    Rng stim(55u + static_cast<unsigned>(m));
    for (int cycle = 0; cycle < 32; ++cycle) {
      const auto words = mmflow::testing::random_words(modes[m].num_pis(), stim);
      ASSERT_EQ(sim_orig.step(words), sim_spec.step(words));
    }
  }
}

class FlowTest : public ::testing::TestWithParam<CombinedCost> {};

TEST_P(FlowTest, EndToEndExperiment) {
  const auto modes = similar_mode_pair(45, 67);
  const MultiModeExperiment exp =
      run_experiment(modes, fast_options(GetParam(), 3));

  // Routing succeeded everywhere (run_experiment checks, but be explicit).
  for (const auto& r : exp.mdr_routing) EXPECT_TRUE(r.success);
  EXPECT_TRUE(exp.dcs_routing.success);
  EXPECT_GE(exp.region.channel_width, exp.min_width);

  // Reconfiguration metrics: DCS must rewrite no more than the full region,
  // and the chain MDR >= Diff >= DCS should hold for similar circuits.
  const ReconfigMetrics metrics =
      reconfig_metrics(exp, bitstream::MuxEncoding::Binary);
  EXPECT_GT(metrics.dcs_speedup(), 1.0);
  EXPECT_LE(metrics.dcs_bits, metrics.mdr_bits);
  EXPECT_LE(metrics.diff_bits, metrics.mdr_bits);
  EXPECT_LE(metrics.dcs_param_routing_bits, metrics.region_routing_bits);
  EXPECT_GT(metrics.lut_bits, 0u);

  // Wirelength metrics exist for both modes.
  const WirelengthMetrics wl = wirelength_metrics(exp);
  ASSERT_EQ(wl.mdr.size(), 2u);
  for (const auto w : wl.mdr) EXPECT_GT(w, 0u);
  for (const auto w : wl.dcs) EXPECT_GT(w, 0u);

  // Some connections merged (the circuits share 3/4 of their logic).
  EXPECT_GT(exp.merged_connections, 0u);
  EXPECT_LE(exp.merged_connections, exp.total_mode_connections);
}

INSTANTIATE_TEST_SUITE_P(CostEngines, FlowTest,
                         ::testing::Values(CombinedCost::WireLength,
                                           CombinedCost::EdgeMatch));

TEST(Flows, DcsSpecializationsRouteEveryActiveConnection) {
  // Every per-mode connection of the tunable circuit must be realised by
  // the DCS routing in that mode.
  const auto modes = similar_mode_pair(40, 91);
  const MultiModeExperiment exp =
      run_experiment(modes, fast_options(CombinedCost::WireLength, 5));

  const arch::RoutingGraph rrg(exp.region);
  for (std::size_t c = 0; c < exp.dcs_routing.conns.size(); ++c) {
    const auto& rc = exp.dcs_routing.conns[c];
    const auto& conn = exp.dcs_problem.nets[rc.net].conns[rc.conn];
    EXPECT_FALSE(rc.nodes.empty());
    EXPECT_EQ(rc.nodes.front(), exp.dcs_problem.nets[rc.net].source_node);
    EXPECT_EQ(rc.nodes.back(), conn.sink_node);
  }
}

TEST(Flows, MergedConnectionsYieldStaticBits) {
  // Two *identical* modes: the wire-length engine should align (nearly) all
  // blocks, so (nearly) every connection merges and the parameterized
  // routing bits collapse. Simulated annealing is a heuristic, so assert
  // near-optimal rather than perfect alignment.
  auto modes = similar_mode_pair(30, 17);
  modes[1] = modes[0];
  modes[1].set_name("modeB");
  auto options = fast_options(CombinedCost::WireLength, 7);
  options.anneal.inner_num = 6.0;
  const MultiModeExperiment exp = run_experiment(modes, options);
  const ReconfigMetrics metrics =
      reconfig_metrics(exp, bitstream::MuxEncoding::Binary);
  const std::size_t max_merged = exp.total_mode_connections / 2;
  EXPECT_GE(exp.merged_connections, (max_merged * 3) / 4);
  // Merged connections are routed once -> far fewer parameterized bits than
  // the Diff of two independently placed identical modes. This is the
  // paper's central claim in miniature.
  EXPECT_GT(metrics.diff_routing_bits, 0u);
  EXPECT_LT(metrics.dcs_param_routing_bits, metrics.diff_routing_bits / 2);
}

TEST(Flows, LutConfigsCoverPlacedBlocks) {
  const auto modes = similar_mode_pair(35, 29);
  const MultiModeExperiment exp =
      run_experiment(modes, fast_options(CombinedCost::WireLength, 9));

  const auto mdr_configs = mdr_lut_configs(exp, modes);
  ASSERT_EQ(mdr_configs.size(), 2u);
  const auto dcs_configs = dcs_lut_configs(exp);
  ASSERT_EQ(dcs_configs.size(), 2u);

  // Each mode's MDR config has as many non-zero sites as the mode has
  // blocks with non-trivial configuration (truth != 0 or FF used).
  for (std::size_t m = 0; m < modes.size(); ++m) {
    std::size_t nonzero = 0;
    for (std::size_t s = 0; s < mdr_configs[m].num_sites(); ++s) {
      nonzero += mdr_configs[m].word(static_cast<int>(s)) != 0;
    }
    std::size_t nontrivial = 0;
    for (const auto& block : modes[m].blocks()) {
      nontrivial += (block.truth != 0 || block.has_ff);
    }
    EXPECT_EQ(nonzero, nontrivial);
  }
}

TEST(Metrics, AreaMetrics) {
  const auto modes = similar_mode_pair(40, 53);
  const AreaMetrics area = area_metrics(modes);
  EXPECT_EQ(area.static_sum_clbs,
            static_cast<int>(modes[0].num_blocks() + modes[1].num_blocks()));
  EXPECT_EQ(area.region_clbs,
            static_cast<int>(std::max(modes[0].num_blocks(),
                                      modes[1].num_blocks())));
  EXPECT_GT(area.ratio(), 0.0);
  EXPECT_LE(area.ratio(), 1.0);
}

TEST(Flows, DeterministicForSeed) {
  const auto modes = similar_mode_pair(30, 71);
  const auto exp1 = run_experiment(modes, fast_options(CombinedCost::WireLength, 13));
  const auto exp2 = run_experiment(modes, fast_options(CombinedCost::WireLength, 13));
  EXPECT_EQ(exp1.min_width, exp2.min_width);
  const auto m1 = reconfig_metrics(exp1, bitstream::MuxEncoding::Binary);
  const auto m2 = reconfig_metrics(exp2, bitstream::MuxEncoding::Binary);
  EXPECT_EQ(m1.dcs_bits, m2.dcs_bits);
  EXPECT_EQ(m1.diff_bits, m2.diff_bits);
}

}  // namespace
}  // namespace mmflow::core

#include <gtest/gtest.h>

#include "arch/rrg.h"
#include "bitstream/config_model.h"

namespace mmflow::bitstream {
namespace {

arch::ArchSpec small_spec() {
  arch::ArchSpec spec;
  spec.nx = 3;
  spec.ny = 3;
  spec.channel_width = 3;
  return spec;
}

/// Picks a legal (node, in-edge) pair for tests.
std::pair<std::uint32_t, std::uint32_t> some_mux(const arch::RoutingGraph& rrg) {
  for (std::uint32_t n = 0; n < rrg.num_nodes(); ++n) {
    if (rrg.is_wire(n) && rrg.fan_in(n) > 1) {
      auto [b, e] = rrg.in_edges(n);
      (void)e;
      return {n, *b};
    }
  }
  throw InternalError("no mux found");
}

TEST(ConfigModel, TotalsArePositiveAndEncodingDependent) {
  const arch::RoutingGraph rrg(small_spec());
  const ConfigModel binary(rrg, MuxEncoding::Binary);
  const ConfigModel onehot(rrg, MuxEncoding::OneHot);
  EXPECT_GT(binary.total_routing_bits(), 0u);
  EXPECT_GT(onehot.total_routing_bits(), binary.total_routing_bits());
  // 3x3 CLBs, 16 truth bits + 1 ff bit each.
  EXPECT_EQ(binary.total_lut_bits(), 9u * 17u);
  EXPECT_EQ(binary.full_region_bits(),
            binary.total_routing_bits() + binary.total_lut_bits());
}

TEST(ConfigModel, EmptyStatesHaveNoDiff) {
  const arch::RoutingGraph rrg(small_spec());
  for (const auto enc : {MuxEncoding::Binary, MuxEncoding::OneHot}) {
    const ConfigModel model(rrg, enc);
    const RoutingState a(rrg.num_nodes());
    const RoutingState b(rrg.num_nodes());
    EXPECT_EQ(model.diff_routing_bits(a, b), 0u);
    EXPECT_EQ(model.used_routing_bits(a), 0u);
    const std::vector<RoutingState> modes{a, b};
    EXPECT_EQ(model.parameterized_routing_bits(modes), 0u);
  }
}

TEST(ConfigModel, SingleDriverDiff) {
  const arch::RoutingGraph rrg(small_spec());
  const auto [node, edge] = some_mux(rrg);
  for (const auto enc : {MuxEncoding::Binary, MuxEncoding::OneHot}) {
    const ConfigModel model(rrg, enc);
    RoutingState a(rrg.num_nodes());
    RoutingState b(rrg.num_nodes());
    a.set_driver(node, edge);
    const auto diff = model.diff_routing_bits(a, b);
    EXPECT_GT(diff, 0u);
    EXPECT_EQ(diff, model.used_routing_bits(a));
    // Diff is symmetric.
    EXPECT_EQ(model.diff_routing_bits(b, a), diff);
    // Same state: no diff.
    EXPECT_EQ(model.diff_routing_bits(a, a), 0u);
  }
}

TEST(ConfigModel, ParameterizedEqualsDiffForTwoModes) {
  const arch::RoutingGraph rrg(small_spec());
  const ConfigModel model(rrg, MuxEncoding::Binary);

  RoutingState a(rrg.num_nodes());
  RoutingState b(rrg.num_nodes());
  // Configure a handful of muxes differently.
  int configured = 0;
  for (std::uint32_t n = 0; n < rrg.num_nodes() && configured < 6; ++n) {
    if (!rrg.is_wire(n) || rrg.fan_in(n) < 2) continue;
    auto [begin, end] = rrg.in_edges(n);
    a.set_driver(n, *begin);
    if (configured % 2 == 0) {
      b.set_driver(n, *(begin + 1));  // differs
    } else if (configured % 3 == 0) {
      b.set_driver(n, *begin);  // same
    }
    (void)end;
    ++configured;
  }
  const std::vector<RoutingState> modes{a, b};
  EXPECT_EQ(model.parameterized_routing_bits(modes),
            model.diff_routing_bits(a, b));
}

TEST(ConfigModel, ParameterizedMonotoneInModes) {
  const arch::RoutingGraph rrg(small_spec());
  const ConfigModel model(rrg, MuxEncoding::Binary);
  RoutingState a(rrg.num_nodes());
  RoutingState b(rrg.num_nodes());
  RoutingState c(rrg.num_nodes());
  const auto [node, edge] = some_mux(rrg);
  b.set_driver(node, edge);
  // Third mode adds another differing mux.
  for (std::uint32_t n = 0; n < rrg.num_nodes(); ++n) {
    if (n != node && rrg.is_wire(n) && rrg.fan_in(n) > 1) {
      c.set_driver(n, *rrg.in_edges(n).first);
      break;
    }
  }
  const std::vector<RoutingState> two{a, b};
  const std::vector<RoutingState> three{a, b, c};
  EXPECT_GE(model.parameterized_routing_bits(three),
            model.parameterized_routing_bits(two));
}

TEST(ConfigModel, LutBitsDiffAndParameterized) {
  const arch::RoutingGraph rrg(small_spec());
  const ConfigModel model(rrg, MuxEncoding::Binary);
  LutRegionConfig a(9);
  LutRegionConfig b(9);
  a.set_site(0, 0xffff, true);
  b.set_site(0, 0xfffe, true);  // one truth bit differs
  EXPECT_EQ(model.diff_lut_bits(a, b), 1u);
  b.set_site(3, 0x0001, false);  // site used only in b: 1 bit
  EXPECT_EQ(model.diff_lut_bits(a, b), 2u);
  const std::vector<LutRegionConfig> modes{a, b};
  EXPECT_EQ(model.parameterized_lut_bits(modes), 2u);
}

TEST(ConfigModel, FrameCounting) {
  const arch::RoutingGraph rrg(small_spec());
  const ConfigModel model(rrg, MuxEncoding::Binary);
  RoutingState a(rrg.num_nodes());
  RoutingState b(rrg.num_nodes());
  std::uint64_t total = 0;
  std::vector<RoutingState> modes{a, b};
  EXPECT_EQ(model.parameterized_routing_frames(modes, 64, &total), 0u);
  EXPECT_GT(total, 0u);

  const auto [node, edge] = some_mux(rrg);
  modes[1].set_driver(node, edge);
  const auto touched = model.parameterized_routing_frames(modes, 64, &total);
  EXPECT_GE(touched, 1u);
  EXPECT_LE(touched, 2u);  // one mux spans at most 2 frames
  EXPECT_LE(touched, total);
}

TEST(ConfigModel, FrameGranularityTradeoff) {
  // Smaller frames -> at least as many total frames and touched frames
  // bounded by totals.
  const arch::RoutingGraph rrg(small_spec());
  const ConfigModel model(rrg, MuxEncoding::Binary);
  std::vector<RoutingState> modes{RoutingState(rrg.num_nodes()),
                                  RoutingState(rrg.num_nodes())};
  int configured = 0;
  for (std::uint32_t n = 0; n < rrg.num_nodes() && configured < 10; ++n) {
    if (rrg.is_wire(n) && rrg.fan_in(n) > 1) {
      modes[1].set_driver(n, *rrg.in_edges(n).first);
      ++configured;
    }
  }
  std::uint64_t total_small = 0;
  std::uint64_t total_big = 0;
  const auto touched_small =
      model.parameterized_routing_frames(modes, 16, &total_small);
  const auto touched_big =
      model.parameterized_routing_frames(modes, 256, &total_big);
  EXPECT_GE(total_small, total_big);
  EXPECT_GE(touched_small, touched_big);
}

}  // namespace
}  // namespace mmflow::bitstream

/// Parallel routing determinism tests: the wave router (RouterOptions::jobs
/// > 1) must produce results bit-identical to the sequential router — same
/// routed paths, same QoR, same whole-experiment FlowKey hashes — and the
/// forced-conflict path must actually exercise the deterministic re-route.
/// Golden hashes pin the routed results so a future change to either path
/// cannot silently drift (the PR 1 / PR 3 golden-hash idiom).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "apps/suites.h"
#include "arch/rrg.h"
#include "common/parallel.h"
#include "common/perf.h"
#include "common/rng.h"
#include "core/flows.h"
#include "core/metrics.h"
#include "route/router.h"

namespace mmflow::route {
namespace {

arch::ArchSpec spec_with(int n, int w) {
  arch::ArchSpec spec;
  spec.nx = n;
  spec.ny = n;
  spec.channel_width = w;
  return spec;
}

/// Random multi-mode problem, same shape as bench_perf_route's generator.
RouteProblem random_problem(const arch::RoutingGraph& rrg, int nets,
                            int num_modes, std::uint64_t seed) {
  Rng rng(seed);
  const auto& spec = rrg.spec();
  RouteProblem problem;
  problem.num_modes = num_modes;
  std::set<std::pair<int, int>> used_sources;
  for (int n = 0; n < nets; ++n) {
    RouteNet net;
    net.name = "n" + std::to_string(n);
    const int sx = static_cast<int>(rng.next_int(1, spec.nx));
    const int sy = static_cast<int>(rng.next_int(1, spec.ny));
    if (!used_sources.emplace(sx, sy).second) continue;
    net.source_node = rrg.clb_source(sx, sy);
    const int fanout = 1 + static_cast<int>(rng.next_below(3));
    for (int f = 0; f < fanout; ++f) {
      int tx = static_cast<int>(rng.next_int(1, spec.nx));
      int ty = static_cast<int>(rng.next_int(1, spec.ny));
      if (tx == sx && ty == sy) tx = (tx % spec.nx) + 1;
      const ModeMask mask =
          num_modes == 1 ? 1u
                         : static_cast<ModeMask>(
                               1u + rng.next_below((1u << num_modes) - 1));
      net.conns.push_back(RouteConn{rrg.clb_sink(tx, ty), mask});
    }
    problem.nets.push_back(std::move(net));
  }
  return problem;
}

/// FNV-1a over everything QoR-relevant in a route result. Two results hash
/// equal iff they are bit-identical for the router's purposes.
std::uint64_t hash_result(const RouteResult& result) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= 1099511628211ULL;
    }
  };
  mix(result.success ? 1 : 0);
  mix(static_cast<std::uint64_t>(result.iterations));
  mix(result.conns.size());
  for (const RoutedConn& rc : result.conns) {
    mix(rc.net);
    mix(rc.conn);
    mix(rc.modes);
    mix(rc.nodes.size());
    for (const auto n : rc.nodes) mix(n);
    for (const auto e : rc.edges) mix(e);
  }
  return h;
}

void expect_same_result(const RouteResult& a, const RouteResult& b) {
  ASSERT_EQ(a.success, b.success);
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.conns.size(), b.conns.size());
  for (std::size_t i = 0; i < a.conns.size(); ++i) {
    EXPECT_EQ(a.conns[i].net, b.conns[i].net) << "conn " << i;
    EXPECT_EQ(a.conns[i].conn, b.conns[i].conn) << "conn " << i;
    EXPECT_EQ(a.conns[i].modes, b.conns[i].modes) << "conn " << i;
    EXPECT_EQ(a.conns[i].nodes, b.conns[i].nodes) << "conn " << i;
    EXPECT_EQ(a.conns[i].edges, b.conns[i].edges) << "conn " << i;
  }
  EXPECT_EQ(hash_result(a), hash_result(b));
}

/// jobs in {1, 2, 4} (and 0 = all hardware threads) must be bit-identical
/// across single-mode, multi-mode and congested problems.
TEST(RouteParallel, BitIdenticalToSequentialAcrossJobLevels) {
  struct Case {
    int n, w, nets, modes;
    std::uint64_t seed;
  };
  const Case cases[] = {
      {8, 4, 30, 1, 3},    // single-mode PathFinder, mildly congested
      {10, 6, 40, 4, 7},   // the TRoute regime
      {12, 8, 60, 8, 11},  // many modes, wide masks
  };
  for (const Case& c : cases) {
    const arch::RoutingGraph rrg(spec_with(c.n, c.w));
    const auto problem = random_problem(rrg, c.nets, c.modes, c.seed);

    RouterOptions sequential;
    const RouteResult reference = route(rrg, problem, sequential);
    ASSERT_TRUE(reference.success);

    for (const int jobs : {2, 4, 0}) {
      RouterOptions opt;
      opt.jobs = jobs;
      const RouteResult parallel = route(rrg, problem, opt);
      SCOPED_TRACE("n=" + std::to_string(c.n) + " modes=" +
                   std::to_string(c.modes) + " jobs=" + std::to_string(jobs));
      expect_same_result(reference, parallel);
    }
  }
}

/// Golden pin for the routed result above (the PR 1 / PR 3 idiom: hash
/// captured from the pre-parallel sequential router). A failure here means
/// routed results drifted — which would also invalidate every cached flow
/// artifact — not merely that a test expectation aged.
constexpr std::uint64_t kGoldenHash = 0xb6acab08c334b479ULL;

TEST(RouteParallel, GoldenHashMatchesPreParallelRouter) {
  const arch::RoutingGraph rrg(spec_with(10, 6));
  const auto problem = random_problem(rrg, 40, 4, 7);
  for (const int jobs : {1, 4}) {
    RouterOptions opt;
    opt.jobs = jobs;
    EXPECT_EQ(hash_result(route(rrg, problem, opt)), kGoldenHash)
        << "jobs=" << jobs;
  }
}

/// The split escape hatch (merged connections forced apart) must survive
/// parallel routing bit-identically too.
TEST(RouteParallel, SplitEscapeHatchIsJobsInvariant) {
  const int n = 4;
  const arch::RoutingGraph rrg(spec_with(n, 1));
  RouteProblem problem;
  problem.num_modes = 3;
  RouteNet merged;
  merged.name = "merged";
  merged.source_node = rrg.clb_source(1, 1);
  merged.conns.push_back(RouteConn{rrg.clb_sink(n, n), 0b111});
  problem.nets.push_back(merged);
  for (int m = 0; m < 3; ++m) {
    for (int y = 2; y <= n; ++y) {
      RouteNet h;
      h.name = "h" + std::to_string(m) + "_" + std::to_string(y);
      h.source_node = rrg.clb_source(2, y);
      h.conns.push_back(RouteConn{rrg.clb_sink(n, (y % n) + 1),
                                  static_cast<ModeMask>(1u << m)});
      problem.nets.push_back(h);
    }
  }
  RouterOptions opt;
  opt.split_conflicted_after = 4;
  const RouteResult reference = route(rrg, problem, opt);
  ASSERT_TRUE(reference.success);
  opt.jobs = 4;
  expect_same_result(reference, route(rrg, problem, opt));
}

/// A congested fabric forces overlapping speculations: the deterministic
/// re-route path must actually fire (conflict counters > 0) and still end
/// bit-identical to the sequential route.
TEST(RouteParallel, ForcedConflictsRerouteDeterministically) {
  const arch::RoutingGraph rrg(spec_with(6, 3));
  RouteProblem problem;
  // Every net crosses the same horizontal channels: speculative paths all
  // compete for the same wires, so later-ordered commits must observe
  // earlier ones.
  for (int y = 1; y <= 6; ++y) {
    for (int x = 1; x <= 2; ++x) {
      RouteNet net;
      net.name = "c" + std::to_string(y) + "_" + std::to_string(x);
      net.source_node = rrg.clb_source(x, y);
      net.conns.push_back(RouteConn{rrg.clb_sink(7 - x, (y % 6) + 1), 1});
      problem.nets.push_back(net);
    }
  }
  const RouteResult reference = route(rrg, problem);
  ASSERT_TRUE(reference.success);

  perf::reset();
  RouterOptions opt;
  opt.jobs = 4;
  const RouteResult parallel = route(rrg, problem, opt);
  expect_same_result(reference, parallel);

  EXPECT_GT(perf::counter_value("route.parallel_waves"), 0u);
  EXPECT_GT(perf::counter_value("route.parallel_wave_conns"), 0u);
  // The congestion makes speculation conflicts near-certain; if this ever
  // flakes the problem below is not congested enough to test the re-route.
  EXPECT_GT(perf::counter_value("route.parallel_conflicts"), 0u);
  // Every conflict re-routes; failed speculations (re-routes that are not
  // conflicts) need a disconnected overlay view and cannot happen here.
  EXPECT_EQ(perf::counter_value("route.parallel_reroutes"),
            perf::counter_value("route.parallel_conflicts"));
}

/// min_channel_width inherits jobs and must find the same width.
TEST(RouteParallel, MinChannelWidthIsJobsInvariant) {
  arch::ArchSpec spec = spec_with(6, 1);
  auto make_problem = [](const arch::RoutingGraph& rrg) {
    return random_problem(rrg, 20, 2, 13);
  };
  const int sequential = min_channel_width(spec, make_problem);
  RouterOptions opt;
  opt.jobs = 4;
  EXPECT_EQ(sequential, min_channel_width(spec, make_problem, opt));
}

}  // namespace
}  // namespace mmflow::route

namespace mmflow::core {
namespace {

FlowOptions fast_options(std::uint64_t seed, int route_jobs) {
  FlowOptions options;
  options.seed = seed;
  options.anneal.inner_num = 2.0;  // keep tests quick
  options.route_jobs = route_jobs;
  return options;
}

void expect_same_routing(const route::RouteResult& a,
                         const route::RouteResult& b) {
  ASSERT_EQ(a.success, b.success);
  ASSERT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.conns.size(), b.conns.size());
  for (std::size_t c = 0; c < a.conns.size(); ++c) {
    EXPECT_EQ(a.conns[c].modes, b.conns[c].modes);
    EXPECT_EQ(a.conns[c].nodes, b.conns[c].nodes);
    EXPECT_EQ(a.conns[c].edges, b.conns[c].edges);
  }
}

/// The acceptance criterion: whole experiments on suite circuits are
/// bit-identical between route_jobs=1 and route_jobs=4 — routed paths, QoR
/// width, and every FlowKey ingredient (so cached artifacts are shared).
TEST(RouteParallelFlow, ExperimentsBitIdenticalAcrossRouteJobs) {
  apps::SuiteOptions suite;
  suite.limit_pairs = 1;
  std::vector<apps::MultiModeBenchmark> circuits;
  for (auto& b : apps::regexp_suite(suite)) circuits.push_back(std::move(b));
  for (auto& b : apps::fir_suite(suite)) circuits.push_back(std::move(b));
  ASSERT_GE(circuits.size(), 2u);

  for (const auto& circuit : circuits) {
    SCOPED_TRACE(circuit.name);
    const auto sequential =
        run_experiment(circuit.modes, fast_options(1, 1));
    const auto parallel = run_experiment(circuit.modes, fast_options(1, 4));

    // FlowKey ingredients: identical options hash (route_jobs excluded)...
    EXPECT_EQ(hash_flow_options(fast_options(1, 1)),
              hash_flow_options(fast_options(1, 4)));
    // ... and identical results, so any cache entry is interchangeable.
    EXPECT_EQ(sequential.min_width, parallel.min_width);
    EXPECT_EQ(sequential.region.channel_width, parallel.region.channel_width);
    ASSERT_EQ(sequential.mdr_routing.size(), parallel.mdr_routing.size());
    for (std::size_t m = 0; m < sequential.mdr_routing.size(); ++m) {
      expect_same_routing(sequential.mdr_routing[m], parallel.mdr_routing[m]);
    }
    expect_same_routing(sequential.dcs_routing, parallel.dcs_routing);
    EXPECT_EQ(sequential.merged_connections, parallel.merged_connections);

    const auto qor_a = reconfig_metrics(sequential, bitstream::MuxEncoding::Binary);
    const auto qor_b = reconfig_metrics(parallel, bitstream::MuxEncoding::Binary);
    EXPECT_EQ(qor_a.mdr_bits, qor_b.mdr_bits);
    EXPECT_EQ(qor_a.dcs_bits, qor_b.dcs_bits);
  }
}

TEST(RouteParallelFlow, RouteJobsNeverEntersFlowHashes) {
  const FlowOptions base{};
  for (const int jobs : {0, 2, 4, 16}) {
    FlowOptions tweaked;
    tweaked.route_jobs = jobs;
    tweaked.router.jobs = jobs;  // the router-level knob is excluded too
    EXPECT_EQ(hash_flow_options(base), hash_flow_options(tweaked));
  }
  // Sanity: the hash still reacts to knobs that do change results.
  FlowOptions other;
  other.router.astar_fac += 0.1;
  EXPECT_NE(hash_flow_options(base), hash_flow_options(other));
}

}  // namespace
}  // namespace mmflow::core

namespace mmflow::parallel {
namespace {

TEST(WorkerPool, ExecutesEveryItemWithValidWorkerIds) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.size(), 3);
  std::vector<std::atomic<int>> hits(100);
  pool.run(hits.size(), [&](std::size_t item, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 3);
    hits[item].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  // Pools are reusable across batches.
  std::atomic<int> total{0};
  pool.run(7, [&](std::size_t, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 7);
}

TEST(WorkerPool, PropagatesTheFirstException) {
  WorkerPool pool(2);
  EXPECT_THROW(
      pool.run(50,
               [&](std::size_t item, int) {
                 if (item == 10) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> total{0};
  pool.run(5, [&](std::size_t, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 5);
}

TEST(WorkerPool, ResolveJobsConvention) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
  EXPECT_GE(resolve_jobs(0), 1);  // 0 = all hardware threads
}

}  // namespace
}  // namespace mmflow::parallel

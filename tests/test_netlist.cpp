#include <gtest/gtest.h>

#include "helpers.h"
#include "netlist/blif.h"
#include "netlist/netlist.h"
#include "netlist/sim.h"
#include "netlist/sop.h"

namespace mmflow::netlist {
namespace {

TEST(Sop, CubeFromBlif) {
  const Cube c = SopCover::cube_from_blif("1-0");
  EXPECT_TRUE(c.matches(0b001));
  EXPECT_TRUE(c.matches(0b011));
  EXPECT_FALSE(c.matches(0b000));
  EXPECT_FALSE(c.matches(0b101));
  EXPECT_THROW((void)SopCover::cube_from_blif("1x0"), ParseError);
}

TEST(Sop, EvalOnsetAndOffset) {
  SopCover cover;
  cover.num_inputs = 2;
  cover.onset = true;
  cover.cubes.push_back(SopCover::cube_from_blif("11"));
  EXPECT_TRUE(cover.eval(0b11));
  EXPECT_FALSE(cover.eval(0b01));

  cover.onset = false;  // now: output 0 iff both inputs 1
  EXPECT_FALSE(cover.eval(0b11));
  EXPECT_TRUE(cover.eval(0b01));
}

TEST(Sop, TruthTableMatchesEval) {
  SopCover cover;
  cover.num_inputs = 3;
  cover.cubes.push_back(SopCover::cube_from_blif("1-1"));
  cover.cubes.push_back(SopCover::cube_from_blif("01-"));
  const auto tt = cover.truth_table();
  for (std::uint64_t m = 0; m < 8; ++m) {
    EXPECT_EQ(((tt[0] >> m) & 1) != 0, cover.eval(m)) << "minterm " << m;
  }
}

TEST(Sop, ConstantDetection) {
  bool value = false;
  EXPECT_TRUE(SopCover::constant(true).is_constant(&value));
  EXPECT_TRUE(value);
  EXPECT_TRUE(SopCover::constant(false).is_constant(&value));
  EXPECT_FALSE(value);

  // x OR !x is constant 1 but only detectable via truth table.
  SopCover tautology;
  tautology.num_inputs = 1;
  tautology.cubes.push_back(SopCover::cube_from_blif("1"));
  tautology.cubes.push_back(SopCover::cube_from_blif("0"));
  EXPECT_TRUE(tautology.is_constant(&value));
  EXPECT_TRUE(value);

  SopCover var;
  var.num_inputs = 1;
  var.cubes.push_back(SopCover::cube_from_blif("1"));
  EXPECT_FALSE(var.is_constant(&value));
}

TEST(Sop, CoverFromTruth) {
  const SopCover c = cover_from_truth(2, 0b0110);  // XOR
  EXPECT_FALSE(c.eval(0b00));
  EXPECT_TRUE(c.eval(0b01));
  EXPECT_TRUE(c.eval(0b10));
  EXPECT_FALSE(c.eval(0b11));
}

TEST(Netlist, BasicGatesSimulate) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  nl.add_output("and", nl.add_and(a, b));
  nl.add_output("or", nl.add_or(a, b));
  nl.add_output("xor", nl.add_xor(a, b));
  nl.add_output("not_a", nl.add_not(a));
  nl.add_output("mux", nl.add_mux(a, b, nl.add_constant(false)));

  Simulator sim(nl);
  const std::uint64_t av = 0b0101;
  const std::uint64_t bv = 0b0011;
  const auto out = sim.eval_outputs({av, bv});
  EXPECT_EQ(out[0] & 0xf, av & bv);
  EXPECT_EQ(out[1] & 0xf, (av | bv) & 0xf);
  EXPECT_EQ(out[2] & 0xf, (av ^ bv) & 0xf);
  EXPECT_EQ(out[3] & 0xf, ~av & 0xf);
  EXPECT_EQ(out[4] & 0xf, (av & bv) & 0xf);  // sel? b : 0
}

TEST(Netlist, TreesMatchReference) {
  Netlist nl;
  std::vector<SignalId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  nl.add_output("and", nl.add_and_tree(ins));
  nl.add_output("or", nl.add_or_tree(ins));
  nl.add_output("xor", nl.add_xor_tree(ins));

  Simulator sim(nl);
  Rng rng(17);
  const auto words = mmflow::testing::random_words(5, rng);
  const auto out = sim.eval_outputs(words);
  std::uint64_t ref_and = ~std::uint64_t{0};
  std::uint64_t ref_or = 0;
  std::uint64_t ref_xor = 0;
  for (const auto w : words) {
    ref_and &= w;
    ref_or |= w;
    ref_xor ^= w;
  }
  EXPECT_EQ(out[0], ref_and);
  EXPECT_EQ(out[1], ref_or);
  EXPECT_EQ(out[2], ref_xor);
}

TEST(Netlist, EmptyTreesYieldNeutralConstants) {
  Netlist nl;
  nl.add_output("and", nl.add_and_tree({}));
  nl.add_output("or", nl.add_or_tree({}));
  Simulator sim(nl);
  const auto out = sim.eval_outputs({});
  EXPECT_EQ(out[0], ~std::uint64_t{0});
  EXPECT_EQ(out[1], std::uint64_t{0});
}

TEST(Netlist, FullAdderTruth) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  const auto [sum, carry] = nl.add_full_adder(a, b, c);
  nl.add_output("s", sum);
  nl.add_output("co", carry);
  Simulator sim(nl);
  for (int m = 0; m < 8; ++m) {
    const auto out = sim.eval_outputs({static_cast<std::uint64_t>(m & 1),
                                       static_cast<std::uint64_t>((m >> 1) & 1),
                                       static_cast<std::uint64_t>((m >> 2) & 1)});
    const int total = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    EXPECT_EQ(out[0] & 1, static_cast<std::uint64_t>(total & 1));
    EXPECT_EQ(out[1] & 1, static_cast<std::uint64_t>(total >> 1));
  }
}

TEST(Netlist, LatchBehaviour) {
  // Toggle flip-flop: q <= q XOR en.
  Netlist nl;
  const auto en = nl.add_input("en");
  const auto q = nl.add_latch(kNoSignal, false, "q");
  nl.set_latch_input(q, nl.add_xor(q, en));
  nl.add_output("q", q);

  Simulator sim(nl);
  EXPECT_EQ(sim.step({1})[0] & 1, 0u);  // outputs old state
  EXPECT_EQ(sim.step({0})[0] & 1, 1u);
  EXPECT_EQ(sim.step({1})[0] & 1, 1u);
  EXPECT_EQ(sim.step({0})[0] & 1, 0u);
}

TEST(Netlist, LatchInitValue) {
  Netlist nl;
  const auto q = nl.add_latch(kNoSignal, true, "q");
  nl.set_latch_input(q, q);
  nl.add_output("q", q);
  Simulator sim(nl);
  EXPECT_EQ(sim.step({})[0], ~std::uint64_t{0});
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl;
  const auto a = nl.add_input("a");
  // Build a cycle by hand: g1 = AND(a, g2), g2 = AND(a, g1) is impossible
  // through the builder API (ids must exist), so use a latch-free self-loop
  // via two gates where the second is patched through outputs: instead,
  // simplest legal construction is a gate whose input list references a
  // *later* gate, which the API forbids. Validate the validator instead on a
  // legal netlist.
  nl.add_output("a", a);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, DuplicateNameRejected) {
  Netlist nl;
  nl.add_input("x");
  EXPECT_THROW(nl.add_input("x"), PreconditionError);
}

TEST(Netlist, UnsetLatchInputFailsValidation) {
  Netlist nl;
  nl.add_latch(kNoSignal, false, "q");
  EXPECT_THROW(nl.validate(), InternalError);
}

// The verification layer's exhaustive-simulation fallback (src/verify) leans
// on the simulator for LUT-shaped gates; pin down the corner cases it feeds.

TEST(Simulator, ZeroInputConstantGates) {
  Netlist nl;
  const auto one = nl.add_gate({}, cover_from_truth(0, 1), "one");
  const auto zero = nl.add_gate({}, cover_from_truth(0, 0), "zero");
  nl.add_output("one", one);
  nl.add_output("zero", zero);
  Simulator sim(nl);
  const auto out = sim.eval_outputs({});
  EXPECT_EQ(out[0], ~std::uint64_t{0});
  EXPECT_EQ(out[1], 0u);
}

TEST(Simulator, SaturatedSixInputGateMatchesTruthTable) {
  // A full-width 6-input gate: the 64 bit-slice lanes enumerate all input
  // combinations, so one eval checks the entire truth table.
  Rng rng(2024);
  const std::uint64_t truth = rng();
  Netlist nl;
  std::vector<SignalId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  nl.add_output("o", nl.add_gate(ins, cover_from_truth(6, truth)));
  Simulator sim(nl);
  std::vector<std::uint64_t> words(6);
  for (int j = 0; j < 6; ++j) {
    for (int lane = 0; lane < 64; ++lane) {
      if ((lane >> j) & 1) words[j] |= std::uint64_t{1} << lane;
    }
  }
  EXPECT_EQ(sim.eval_outputs(words)[0], truth);
}

TEST(Simulator, DuplicateFaninGate) {
  // The same signal wired to both pins: XOR collapses to constant 0, AND to
  // the identity — the unreachable (01/10) truth rows must never fire.
  Netlist nl;
  const auto a = nl.add_input("a");
  nl.add_output("xor_aa", nl.add_gate({a, a}, cover_from_truth(2, 0b0110)));
  nl.add_output("and_aa", nl.add_gate({a, a}, cover_from_truth(2, 0b1000)));
  Simulator sim(nl);
  Rng rng(55);
  for (int round = 0; round < 8; ++round) {
    const std::uint64_t word = rng();
    const auto out = sim.eval_outputs({word});
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[1], word);
  }
}

TEST(Blif, ParseSimpleModel) {
  const std::string text = R"(
# comment
.model adder
.inputs a b
.outputs s c
.names a b s
10 1
01 1
.names a b c
11 1
.end
)";
  const Netlist nl = parse_blif(text);
  EXPECT_EQ(nl.name(), "adder");
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.num_gates(), 2u);

  Simulator sim(nl);
  const auto out = sim.eval_outputs({0b0101, 0b0011});
  EXPECT_EQ(out[0] & 0xf, 0b0110u);  // xor
  EXPECT_EQ(out[1] & 0xf, 0b0001u);  // and
}

TEST(Blif, ParseLatchAndContinuation) {
  const std::string text =
      ".model seq\n"
      ".inputs d\n"
      ".outputs q\n"
      ".latch din q re clk 1\n"
      ".names d \\\n"
      "din\n"
      "1 1\n"
      ".end\n";
  const Netlist nl = parse_blif(text);
  EXPECT_EQ(nl.num_latches(), 1u);
  Simulator sim(nl);
  // init value 1 visible in first cycle.
  EXPECT_EQ(sim.step({0})[0], ~std::uint64_t{0});
  EXPECT_EQ(sim.step({0})[0], std::uint64_t{0});
}

TEST(Blif, OffsetCoverAndConstants) {
  const std::string text = R"(
.model consts
.inputs a b
.outputs nand zero one
.names a b nand
11 0
.names zero
.names one
1
.end
)";
  const Netlist nl = parse_blif(text);
  Simulator sim(nl);
  const auto out = sim.eval_outputs({0b0101, 0b0011});
  EXPECT_EQ(out[0] & 0xf, 0b1110u);
  EXPECT_EQ(out[1], 0u);
  EXPECT_EQ(out[2], ~std::uint64_t{0});
}

TEST(Blif, OutOfOrderDefinitionsResolve) {
  const std::string text = R"(
.model ooo
.inputs a
.outputs y
.names t y
1 1
.names a t
0 1
.end
)";
  const Netlist nl = parse_blif(text);
  Simulator sim(nl);
  EXPECT_EQ(sim.eval_outputs({0b01})[0] & 0b11, 0b10u);
}

TEST(Blif, Errors) {
  EXPECT_THROW(parse_blif(".inputs a\n.end\n"), ParseError);  // no .model
  EXPECT_THROW(parse_blif(".model m\n.outputs y\n.end\n"), ParseError);
  EXPECT_THROW(parse_blif(".model m\n.subckt foo\n.end\n"), ParseError);
  EXPECT_THROW(parse_blif(".model m\n.names a y\n2 1\n.end\n"), ParseError);
  EXPECT_THROW(parse_blif(".model m\n.names y\n1\n.end\n.model n\n"), ParseError);
}

TEST(Blif, RoundTripPreservesBehaviour) {
  Netlist nl("rt");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  const auto q = nl.add_latch(kNoSignal, true, "q");
  const auto f = nl.add_mux(a, nl.add_xor(b, q), nl.add_nand(b, c));
  nl.set_latch_input(q, f);
  nl.add_output("f", f);
  nl.add_output("q", q);

  const Netlist reparsed = parse_blif(write_blif(nl));
  mmflow::testing::expect_equivalent(nl, reparsed, 32, 99);
}

}  // namespace
}  // namespace mmflow::netlist

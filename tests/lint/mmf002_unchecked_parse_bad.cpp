// Fixture: MMF002 unchecked-parse violations.
#include <cstdio>
#include <cstdlib>
#include <string>

int parse_jobs(const char* text) {
  return atoi(text);  // expect-lint: MMF002
}

double parse_tradeoff(const std::string& text) {
  return std::stod(text);  // expect-lint: MMF002
}

unsigned long long parse_seed(const char* text) {
  return std::strtoull(text, nullptr, 10);  // expect-lint: MMF002
}

int parse_pair(const char* text, int* a, int* b) {
  return std::sscanf(text, "%d:%d", a, b);  // expect-lint: MMF002
}

// Fixture: MMF004 raw-assert violations.
#include <cassert>  // expect-lint: MMF004

void check_width(int width) {
  assert(width > 0);  // expect-lint: MMF004
}

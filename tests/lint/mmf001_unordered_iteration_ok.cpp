// Fixture: MMF001 clean variants — sorted-copy iteration and justified
// ordered-ok annotations (both placement styles). Must lint clean.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

std::uint64_t hash_everything() {
  std::unordered_map<std::string, int> widths;
  widths.emplace("a", 1);
  // Extract, sort, then consume in canonical order: point lookups and
  // size() on unordered containers are always fine; only traversal order
  // is unspecified.
  std::vector<std::pair<std::string, int>> sorted;
  sorted.reserve(widths.size());
  // mmflow-lint: ordered-ok(collects pairs only; the hash below consumes the sorted copy)
  for (const auto& entry : widths) sorted.push_back(entry);
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& [name, w] : sorted) {
    for (const char c : name) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    h = (h ^ static_cast<std::uint64_t>(w)) * 0x100000001b3ull;
  }
  return h;
}

int count_even(const std::unordered_set<int>& seen) {
  int even = 0;
  for (const int v : seen) {  // mmflow-lint: ordered-ok(commutative integer count)
    even += (v % 2 == 0) ? 1 : 0;
  }
  return even;
}

bool contains(const std::unordered_set<int>& seen, int v) {
  return seen.find(v) != seen.end();  // point lookup: no order observed
}

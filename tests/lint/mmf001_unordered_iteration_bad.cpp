// Fixture: MMF001 unordered-iteration violations. Not compiled; scanned by
// tests/lint/run_lint_tests.py. Each `expect-lint` marker pins the exact
// diagnostic (rule + line) mmflow_lint.py must emit for this file.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

std::uint64_t hash_everything() {
  std::unordered_map<std::string, int> widths;
  widths.emplace("a", 1);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& [name, w] : widths) {  // expect-lint: MMF001
    for (const char c : name) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    h = (h ^ static_cast<std::uint64_t>(w)) * 0x100000001b3ull;
  }
  return h;
}

int first_key() {
  std::unordered_set<int> seen{3, 1, 2};
  auto it = seen.begin();  // expect-lint: MMF001
  return *it;
}

// Aliased unordered types are tracked through the alias.
using SiteTable = std::unordered_map<int, double>;

double sum_sites(const SiteTable& sites) {
  double total = 0.0;
  for (const auto& [site, cost] : sites) {  // expect-lint: MMF001
    total += cost;  // FP sum: addend order changes the result bits
  }
  return total;
}

// Fixture: MMF003 nondeterministic-rng violations.
#include <cstdlib>
#include <ctime>
#include <random>

void seed_badly() {
  srand(42);  // expect-lint: MMF003
}

int draw() {
  return rand();  // expect-lint: MMF003
}

unsigned hardware_entropy() {
  std::random_device rd;  // expect-lint: MMF003
  return rd();
}

long wall_clock_seed() {
  return time(nullptr);  // expect-lint: MMF003
}

long cpu_seed() {
  return std::clock();  // expect-lint: MMF003
}

// Fixture: MMF003 clean variant — explicit-seed Rng, and identifiers that
// merely contain the banned tokens (wall_time, runtime(), localtime via a
// member) must not trip.
#include <chrono>
#include <cstdint>

namespace mmflow {
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t operator()() { return state_ += 0x9e3779b97f4a7c15ull; }

 private:
  std::uint64_t state_;
};
}  // namespace mmflow

std::uint64_t draw(std::uint64_t seed) {
  mmflow::Rng rng(seed);  // explicit seed: deterministic per contract
  return rng();
}

double wall_time() {  // contains "time" but is not ::time()
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

struct Stopwatch {
  double runtime() const { return 0.0; }  // suffix "time" must not trip
  double lap_clock() const { return 0.0; }  // suffix "clock" must not trip
};

// Fixture: MMF006 bad-annotation violations — malformed or unknown lint
// annotations must be loud, never silently inert.
#include <unordered_map>

int sum(const std::unordered_map<int, int>& table) {
  int total = 0;
  // expect-lint(+1): MMF006
  // mmflow-lint: ordered-ok()
  for (const auto& [k, v] : table) total += v;  // expect-lint: MMF001
  return total;
}

int product(const std::unordered_map<int, int>& table) {
  int total = 1;
  // expect-lint(+1): MMF006
  // mmflow-lint: iteration-is-fine(trust me)
  for (const auto& [k, v] : table) total *= v;  // expect-lint: MMF001
  return total;
}

// expect-lint(+1): MMF006
// a stray mmflow-lint mention without the colon grammar

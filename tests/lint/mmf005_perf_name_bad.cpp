// Fixture: MMF005 perf-name-grammar violations.
#include <cstdint>
#include <string_view>

#define MMFLOW_PERF_ADD(name, delta) (void)(name)
#define MMFLOW_PERF_SCOPE(name) (void)(name)

namespace mmflow::perf {
std::uint64_t& counter(std::string_view name);
}

void instrumented() {
  MMFLOW_PERF_ADD("routeTotal", 1);  // expect-lint: MMF005
  MMFLOW_PERF_ADD("route", 1);  // expect-lint: MMF005
  MMFLOW_PERF_SCOPE("route.Heap.pushes");  // expect-lint: MMF005
  MMFLOW_PERF_ADD("mystery.counter", 1);  // expect-lint: MMF005
  mmflow::perf::counter("widget.spins") += 1;  // expect-lint: MMF005
}

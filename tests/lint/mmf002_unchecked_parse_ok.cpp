// Fixture: MMF002 clean variant — the checked common/strings.h parsers.
// Identifiers that merely *contain* a banned name (my_atoi) must not trip.
#include <cstdint>
#include <string>
#include <string_view>

namespace mmflow {
int parse_int(std::string_view text, std::string_view what);
std::uint64_t parse_u64(std::string_view text, std::string_view what);
double parse_double(std::string_view text, std::string_view what);
bool try_parse_hex_u64(std::string_view text, std::uint64_t* out);
}  // namespace mmflow

int parse_jobs(const std::string& text) {
  return mmflow::parse_int(text, "--jobs");
}

double parse_tradeoff(const std::string& text) {
  return mmflow::parse_double(text, "--timing-tradeoff");
}

std::uint64_t parse_key_field(const std::string& text) {
  std::uint64_t value = 0;
  if (!mmflow::try_parse_hex_u64(text, &value)) return 0;
  return value;
}

int my_atoi_counter = 0;  // contains "atoi" but is not a call to it

const char* describe() {
  return "never call atoi(knob) here";  // banned name inside a string literal
}

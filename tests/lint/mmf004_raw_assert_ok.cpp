// Fixture: MMF004 clean variant — always-on MMFLOW_CHECK / MMFLOW_REQUIRE,
// and static_assert (compile-time, cannot be compiled out) must not trip.
#include <stdexcept>
#include <type_traits>

#define MMFLOW_CHECK(expr) \
  do { \
    if (!(expr)) throw std::logic_error(#expr); \
  } while (false)

void check_width(int width) {
  MMFLOW_CHECK(width > 0);
  static_assert(std::is_signed_v<int>, "int is signed");
}

int reassert_count = 0;  // contains "assert" but is not a call to it

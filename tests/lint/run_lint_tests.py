#!/usr/bin/env python3
"""Golden fixture tests for tools/mmflow_lint.py (stdlib only; wired into
ctest as `lint_fixtures`).

Each tests/lint/*.cpp fixture declares its expected diagnostics inline:

    some_violation();  // expect-lint: MMF002
    // expect-lint(+1): MMF006     <- the *next* line must be diagnosed

The runner asserts, per fixture, the EXACT set of (line, rule) diagnostics
and the exit code (1 when violations are expected, 0 for clean fixtures) —
so a rule that stops firing, fires on the wrong line, or reports the wrong
ID fails loudly. It then self-checks the live tree: `mmflow_lint.py src
bench examples` must exit 0, and the CLI contract (exit 2 on a missing
path, --list-rules catalogue) must hold.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

LINT_DIR = Path(__file__).resolve().parent
REPO_ROOT = LINT_DIR.parent.parent
LINT = REPO_ROOT / "tools" / "mmflow_lint.py"

EXPECT_RE = re.compile(r"//\s*expect-lint(?:\((\+|-)(\d+)\))?:\s*(MMF\d{3})")
DIAG_RE = re.compile(r"^(.*):(\d+): (MMF\d{3}) \[([a-z-]+)\]")

failures: list[str] = []


def run_lint(args: list[str]) -> tuple[int, str, str]:
    proc = subprocess.run([sys.executable, str(LINT)] + args,
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def expected_diagnostics(fixture: Path) -> set[tuple[int, str]]:
    expected: set[tuple[int, str]] = set()
    for lineno, line in enumerate(fixture.read_text().splitlines(), start=1):
        for sign, offset, rule in EXPECT_RE.findall(line):
            delta = int(offset or 0) * (-1 if sign == "-" else 1)
            expected.add((lineno + delta, rule))
    return expected


def check_fixture(fixture: Path) -> None:
    expected = expected_diagnostics(fixture)
    code, stdout, stderr = run_lint([str(fixture)])
    actual: set[tuple[int, str]] = set()
    for line in stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            actual.add((int(m.group(2)), m.group(3)))
    name = fixture.name
    if actual != expected:
        missing = sorted(expected - actual)
        surplus = sorted(actual - expected)
        failures.append(
            f"{name}: diagnostics mismatch"
            + (f"; missing {missing}" if missing else "")
            + (f"; unexpected {surplus}" if surplus else ""))
    want_code = 1 if expected else 0
    if code != want_code:
        failures.append(f"{name}: exit code {code}, expected {want_code} "
                        f"(stderr: {stderr.strip()})")


def main() -> int:
    fixtures = sorted(LINT_DIR.glob("*.cpp"))
    if not fixtures:
        print("no fixtures found", file=sys.stderr)
        return 1
    for fixture in fixtures:
        check_fixture(fixture)

    # Self-check: the live tree must be clean. This is the same invocation
    # the CI lint job runs; a violation merged into src/bench/examples
    # fails here first.
    code, stdout, _ = run_lint(
        [str(REPO_ROOT / d) for d in ("src", "bench", "examples")])
    if code != 0:
        failures.append(f"live tree not lint-clean (exit {code}):\n{stdout}")

    # CLI contract pinned by docs/STATIC_ANALYSIS.md.
    code, _, _ = run_lint([str(REPO_ROOT / "no-such-path")])
    if code != 2:
        failures.append(f"missing path: exit {code}, expected 2")
    code, stdout, _ = run_lint(["--list-rules"])
    if code != 0 or "MMF001" not in stdout or "MMF006" not in stdout:
        failures.append("--list-rules does not print the rule catalogue")

    if failures:
        print(f"{len(failures)} lint-fixture failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    print(f"OK: {len(fixtures)} fixture(s) + live-tree self-check + CLI "
          "contract")
    return 0


if __name__ == "__main__":
    sys.exit(main())

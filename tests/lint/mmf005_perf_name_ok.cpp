// Fixture: MMF005 clean variant — registered module prefixes, well-formed
// segments, and a runtime-completed literal prefix ("tune.rung" + N).
#include <cstdint>
#include <string>
#include <string_view>

#define MMFLOW_PERF_ADD(name, delta) (void)(name)
#define MMFLOW_PERF_SCOPE(name) (void)(name)

namespace mmflow::perf {
std::uint64_t& counter(std::string_view name);
}

void instrumented(int rung) {
  MMFLOW_PERF_ADD("route.heap_pushes", 1);
  MMFLOW_PERF_ADD("flowcache.disk_hits", 1);
  MMFLOW_PERF_SCOPE("combined_place.total");
  MMFLOW_PERF_ADD("tune.rung0.trials", 1);
  mmflow::perf::counter("tune.rung" + std::to_string(rung) + ".trials") += 1;
}

void dynamic_name(std::string_view name) {
  mmflow::perf::counter(name) += 1;  // non-literal: checked at its source
}

#include <gtest/gtest.h>

#include "aig/bridge.h"
#include "helpers.h"
#include "place/placer.h"
#include "techmap/mapper.h"

namespace mmflow::place {
namespace {

/// Small synthetic placement netlist: a chain of CLBs with IO at both ends.
PlaceNetlist chain_netlist(int length) {
  PlaceNetlist nl;
  const auto in = nl.add_block(PlaceBlock::Type::Io, "in");
  std::uint32_t prev = in;
  for (int i = 0; i < length; ++i) {
    const auto b = nl.add_block(PlaceBlock::Type::Clb, "c" + std::to_string(i));
    nl.add_net(PlaceNet{prev, {b}, 1.0});
    prev = b;
  }
  const auto out = nl.add_block(PlaceBlock::Type::Io, "out");
  nl.add_net(PlaceNet{prev, {out}, 1.0});
  return nl;
}

arch::DeviceGrid grid_for(const PlaceNetlist& nl) {
  return arch::DeviceGrid(
      arch::size_device(static_cast<int>(nl.num_clbs()),
                        static_cast<int>(nl.num_ios()), 1.4));
}

TEST(CrossingFactor, MatchesVprTable) {
  EXPECT_DOUBLE_EQ(crossing_factor(2), 1.0);
  EXPECT_DOUBLE_EQ(crossing_factor(4), 1.0828);
  EXPECT_DOUBLE_EQ(crossing_factor(50), 2.7933);
  EXPECT_NEAR(crossing_factor(60), 2.7933 + 10 * 0.02616, 1e-9);
  EXPECT_EQ(crossing_factor(0), 0.0);
}

TEST(Placement, AssignUnassignRoundTrip) {
  arch::ArchSpec spec;
  spec.nx = 3;
  spec.ny = 3;
  const arch::DeviceGrid grid(spec);
  Placement p(grid, 2);
  const arch::Site s = grid.clb_site(4);
  p.assign(0, s);
  EXPECT_EQ(p.clb_occupant(4), 0);
  EXPECT_THROW(p.assign(1, s), PreconditionError);  // occupied
  p.unassign(0);
  EXPECT_EQ(p.clb_occupant(4), -1);
  EXPECT_NO_THROW(p.assign(1, s));
}

TEST(RandomPlacement, IsLegal) {
  const PlaceNetlist nl = chain_netlist(12);
  const auto grid = grid_for(nl);
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    const Placement p = random_placement(nl, grid, rng);
    EXPECT_NO_THROW(p.validate(nl));
  }
}

TEST(RandomPlacement, DeviceTooSmallThrows) {
  const PlaceNetlist nl = chain_netlist(30);
  arch::ArchSpec spec;
  spec.nx = 3;
  spec.ny = 3;
  const arch::DeviceGrid grid(spec);
  Rng rng(1);
  EXPECT_THROW(random_placement(nl, grid, rng), PreconditionError);
}

TEST(Placer, ImprovesCostAndStaysLegal) {
  const PlaceNetlist nl = chain_netlist(25);
  const auto grid = grid_for(nl);

  Rng rng(7);
  const Placement initial = random_placement(nl, grid, rng);
  const double initial_cost = placement_cost(nl, initial);

  PlacerOptions options;
  options.seed = 7;
  PlacerStats stats;
  const Placement placed = place(nl, grid, options, &stats);
  EXPECT_NO_THROW(placed.validate(nl));
  const double final_cost = placement_cost(nl, placed);
  EXPECT_LT(final_cost, initial_cost * 0.7)
      << "annealing should improve a random chain placement substantially";
  EXPECT_NEAR(final_cost, stats.final_cost, 1e-6);
  EXPECT_GT(stats.moves_attempted, 0);
}

TEST(Placer, DeterministicForSeed) {
  const PlaceNetlist nl = chain_netlist(15);
  const auto grid = grid_for(nl);
  PlacerOptions options;
  options.seed = 42;
  const Placement a = place(nl, grid, options);
  const Placement b = place(nl, grid, options);
  for (std::uint32_t blk = 0; blk < nl.num_blocks(); ++blk) {
    EXPECT_EQ(a.site_of(blk), b.site_of(blk));
  }
}

TEST(Placer, ChainCostApproachesOptimal) {
  // A 9-block chain in a 16-site device: optimal cost is ~2 per net
  // (adjacent blocks). Annealing should land within 2x of that.
  const PlaceNetlist nl = chain_netlist(9);
  arch::ArchSpec spec;
  spec.nx = 4;
  spec.ny = 4;
  const arch::DeviceGrid grid(spec);
  PlacerOptions options;
  options.seed = 3;
  const Placement placed = place(nl, grid, options);
  const double cost = placement_cost(nl, placed);
  // 10 two-terminal nets, minimum cost 2.0 each when adjacent.
  EXPECT_LT(cost, 2.0 * 10 * 2.0);
}

TEST(Placer, QuenchOnlyRefinesInitialPlacement) {
  const PlaceNetlist nl = chain_netlist(20);
  const auto grid = grid_for(nl);
  Rng rng(11);
  Placement initial = random_placement(nl, grid, rng);
  const double initial_cost = placement_cost(nl, initial);
  PlacerOptions options;
  options.seed = 11;
  options.quench_only = true;
  const Placement refined = place_from(nl, grid, std::move(initial), options);
  EXPECT_LE(placement_cost(nl, refined), initial_cost);
}

TEST(PlaceNetlist, FromLutCircuit) {
  // Map a small circuit and check the lowering: nets respect fanout dedup.
  netlist::Netlist nl("t");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto x = nl.add_xor(a, b);
  const auto y = nl.add_and(x, a);
  nl.add_output("x", x);
  nl.add_output("y", y);
  const auto mapped = techmap::map_to_luts(aig::aig_from_netlist(nl));

  LutPlaceMapping mapping;
  const PlaceNetlist pn = to_place_netlist(mapped, &mapping);
  EXPECT_EQ(pn.num_clbs(), mapped.num_blocks());
  EXPECT_EQ(pn.num_ios(), 2u + 2u);
  EXPECT_EQ(mapping.pi_base, mapped.num_blocks());

  // Every net's driver drives at least one sink, blocks are in range.
  for (const auto& net : pn.nets()) {
    EXPECT_FALSE(net.sinks.empty());
    for (const auto s : net.sinks) {
      EXPECT_LT(s, pn.num_blocks());
      EXPECT_NE(s, net.driver);
    }
  }
}

TEST(PlaceNetlist, SelfLoopFfNeedsNoNet) {
  // q <= xor(q, en): the FF block feeds itself; the self-reference must not
  // create a net terminal.
  netlist::Netlist nl("loop");
  const auto en = nl.add_input("en");
  const auto q = nl.add_latch(netlist::kNoSignal, false, "q");
  nl.set_latch_input(q, nl.add_xor(q, en));
  nl.add_output("q", q);
  const auto mapped = techmap::map_to_luts(aig::aig_from_netlist(nl));
  const PlaceNetlist pn = to_place_netlist(mapped);
  for (const auto& net : pn.nets()) {
    for (const auto s : net.sinks) EXPECT_NE(s, net.driver);
  }
}

TEST(Placer, MappedCircuitEndToEnd) {
  // Map a random circuit, place it, validate legality.
  Rng rng(21);
  netlist::Netlist nl("r");
  std::vector<netlist::SignalId> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(nl.add_input("i" + std::to_string(i)));
  for (int i = 0; i < 40; ++i) {
    const auto a = pool[rng.next_below(pool.size())];
    const auto b = pool[rng.next_below(pool.size())];
    pool.push_back(rng.next_bool(0.5) ? nl.add_xor(a, b) : nl.add_and(a, b));
  }
  for (int i = 0; i < 3; ++i) {
    nl.add_output("o" + std::to_string(i), pool[pool.size() - 1 - i]);
  }
  const auto mapped = techmap::map_to_luts(aig::aig_from_netlist(nl));
  const PlaceNetlist pn = to_place_netlist(mapped);
  const auto grid = grid_for(pn);
  PlacerOptions options;
  options.seed = 9;
  const Placement placed = place(pn, grid, options);
  EXPECT_NO_THROW(placed.validate(pn));
}

}  // namespace
}  // namespace mmflow::place

#include <gtest/gtest.h>

#include "arch/rrg.h"
#include "common/rng.h"
#include "route/router.h"

namespace mmflow::route {
namespace {

arch::ArchSpec spec_with(int n, int w) {
  arch::ArchSpec spec;
  spec.nx = n;
  spec.ny = n;
  spec.channel_width = w;
  return spec;
}

/// Audits a successful result against first principles: each connection's
/// path starts at the net source, ends at its sink, follows RRG edges, and
/// no (node, mode) carries two different (net, driver) pairs.
void audit(const arch::RoutingGraph& rrg, const RouteProblem& problem,
           const RouteResult& result) {
  ASSERT_TRUE(result.success);
  struct Claim {
    std::int32_t net = -1;
    std::int32_t edge = -1;
  };
  std::vector<Claim> claims(rrg.num_nodes() *
                            static_cast<std::size_t>(problem.num_modes));
  for (const RoutedConn& rc : result.conns) {
    const auto& net = problem.nets[rc.net];
    const auto& conn = net.conns[rc.conn];
    ASSERT_FALSE(rc.nodes.empty());
    EXPECT_EQ(rc.nodes.front(), net.source_node);
    EXPECT_EQ(rc.nodes.back(), conn.sink_node);
    ASSERT_EQ(rc.edges.size() + 1, rc.nodes.size());
    for (std::size_t i = 0; i < rc.edges.size(); ++i) {
      const auto& e = rrg.edge(rc.edges[i]);
      EXPECT_EQ(e.from, rc.nodes[i]);
      EXPECT_EQ(e.to, rc.nodes[i + 1]);
    }
    for (std::size_t i = 0; i < rc.nodes.size(); ++i) {
      const std::int32_t edge =
          i == 0 ? -1 : static_cast<std::int32_t>(rc.edges[i - 1]);
      for (int m = 0; m < problem.num_modes; ++m) {
        if (!(conn.modes >> m & 1)) continue;
        Claim& c = claims[static_cast<std::size_t>(rc.nodes[i]) *
                              problem.num_modes + m];
        if (c.net == -1) {
          c.net = static_cast<std::int32_t>(rc.net);
          c.edge = edge;
        } else {
          EXPECT_EQ(c.net, static_cast<std::int32_t>(rc.net))
              << "two nets on node " << rc.nodes[i] << " in mode " << m;
          EXPECT_EQ(c.edge, edge) << "two drivers on node " << rc.nodes[i];
        }
      }
    }
  }
}

TEST(Router, SingleConnection) {
  const arch::RoutingGraph rrg(spec_with(4, 3));
  RouteProblem problem;
  problem.num_modes = 1;
  RouteNet net;
  net.name = "n0";
  net.source_node = rrg.clb_source(1, 1);
  net.conns.push_back(RouteConn{rrg.clb_sink(4, 4), 1});
  problem.nets.push_back(net);

  const RouteResult result = route(rrg, problem);
  audit(rrg, problem, result);
  EXPECT_GE(result.conns[0].nodes.size(), 4u);  // src, opin, wires..., ipin, sink
}

TEST(Router, FanoutSharesTrunk) {
  const arch::RoutingGraph rrg(spec_with(5, 4));
  RouteProblem problem;
  RouteNet net;
  net.name = "fan";
  net.source_node = rrg.clb_source(1, 3);
  net.conns.push_back(RouteConn{rrg.clb_sink(5, 3), 1});
  net.conns.push_back(RouteConn{rrg.clb_sink(5, 2), 1});
  net.conns.push_back(RouteConn{rrg.clb_sink(5, 4), 1});
  problem.nets.push_back(net);

  const RouteResult result = route(rrg, problem);
  audit(rrg, problem, result);
  // With the share discount the three paths should reuse trunk wires:
  // total distinct wires well below the sum of the three path lengths.
  std::size_t total_path_wires = 0;
  for (const auto& rc : result.conns) {
    for (const auto n : rc.nodes) total_path_wires += rrg.is_wire(n) ? 1 : 0;
  }
  EXPECT_LT(result.total_wirelength(rrg), total_path_wires);
}

TEST(Router, CongestionNegotiation) {
  // Many nets crossing a narrow channel force negotiation.
  const arch::RoutingGraph rrg(spec_with(4, 3));
  RouteProblem problem;
  for (int y = 1; y <= 4; ++y) {
    RouteNet net;
    net.name = "h" + std::to_string(y);
    net.source_node = rrg.clb_source(1, y);
    net.conns.push_back(RouteConn{rrg.clb_sink(4, y), 1});
    problem.nets.push_back(net);
    RouteNet net2;
    net2.name = "d" + std::to_string(y);
    net2.source_node = rrg.clb_source(2, y);
    net2.conns.push_back(RouteConn{rrg.clb_sink(3, (y % 4) + 1), 1});
    problem.nets.push_back(net2);
  }
  const RouteResult result = route(rrg, problem);
  audit(rrg, problem, result);
}

TEST(Router, CrossModeSharingIsLegal) {
  // Two different nets with the same source/sink sites but in different
  // modes: they may overlap on wires.
  const arch::RoutingGraph rrg(spec_with(4, 2));
  RouteProblem problem;
  problem.num_modes = 2;
  RouteNet a;
  a.name = "modeA";
  a.source_node = rrg.clb_source(1, 1);
  a.conns.push_back(RouteConn{rrg.clb_sink(4, 4), 0b01});
  RouteNet b;
  b.name = "modeB";
  b.source_node = rrg.clb_source(1, 1);
  b.conns.push_back(RouteConn{rrg.clb_sink(4, 4), 0b10});
  problem.nets.push_back(a);
  problem.nets.push_back(b);

  const RouteResult result = route(rrg, problem);
  audit(rrg, problem, result);
}

TEST(Router, MergedConnectionIsStatic) {
  // One connection active in both modes: its routing bits must be identical
  // across modes (zero parameterized bits).
  const arch::RoutingGraph rrg(spec_with(4, 3));
  RouteProblem problem;
  problem.num_modes = 2;
  RouteNet net;
  net.name = "merged";
  net.source_node = rrg.clb_source(1, 1);
  net.conns.push_back(RouteConn{rrg.clb_sink(3, 3), 0b11});
  problem.nets.push_back(net);

  const RouteResult result = route(rrg, problem);
  audit(rrg, problem, result);
  const auto states = result.per_mode_states(rrg, problem);
  const bitstream::ConfigModel model(rrg, bitstream::MuxEncoding::Binary);
  EXPECT_EQ(model.parameterized_routing_bits(states), 0u);
  EXPECT_GT(model.used_routing_bits(states[0]), 0u);
}

TEST(Router, UnmergedConnectionsAreParameterized) {
  // Same endpoints but separate per-mode connections of *different* nets:
  // bits should differ across modes unless the router happens to align them
  // (different nets may still share wires across modes; drivers of IPIN of
  // two different nets from different wires differ with high probability).
  const arch::RoutingGraph rrg(spec_with(4, 3));
  RouteProblem problem;
  problem.num_modes = 2;
  RouteNet a;
  a.name = "a";
  a.source_node = rrg.clb_source(1, 1);
  a.conns.push_back(RouteConn{rrg.clb_sink(3, 3), 0b01});
  RouteNet b;
  b.name = "b";
  b.source_node = rrg.clb_source(1, 2);  // different source site
  b.conns.push_back(RouteConn{rrg.clb_sink(3, 3), 0b10});
  problem.nets.push_back(a);
  problem.nets.push_back(b);

  const RouteResult result = route(rrg, problem);
  audit(rrg, problem, result);
  const auto states = result.per_mode_states(rrg, problem);
  const bitstream::ConfigModel model(rrg, bitstream::MuxEncoding::Binary);
  EXPECT_GT(model.parameterized_routing_bits(states), 0u);
}

TEST(Router, PadToPadRouting) {
  const arch::RoutingGraph rrg(spec_with(3, 2));
  const arch::DeviceGrid grid(spec_with(3, 2));
  RouteProblem problem;
  RouteNet net;
  net.name = "io";
  net.source_node = rrg.pad_source(grid.pad_site(0));
  net.conns.push_back(RouteConn{rrg.pad_sink(grid.pad_site(17)), 1});
  problem.nets.push_back(net);
  const RouteResult result = route(rrg, problem);
  audit(rrg, problem, result);
}

TEST(Router, WirelengthPerMode) {
  const arch::RoutingGraph rrg(spec_with(4, 3));
  RouteProblem problem;
  problem.num_modes = 2;
  RouteNet a;
  a.name = "a";
  a.source_node = rrg.clb_source(1, 1);
  a.conns.push_back(RouteConn{rrg.clb_sink(4, 1), 0b01});
  problem.nets.push_back(a);
  const RouteResult result = route(rrg, problem);
  audit(rrg, problem, result);
  EXPECT_GT(result.wirelength_of_mode(rrg, problem, 0), 0u);
  EXPECT_EQ(result.wirelength_of_mode(rrg, problem, 1), 0u);
}

TEST(Router, DeterministicForSeed) {
  const arch::RoutingGraph rrg(spec_with(4, 2));
  RouteProblem problem;
  for (int i = 1; i <= 4; ++i) {
    RouteNet net;
    net.name = "n" + std::to_string(i);
    net.source_node = rrg.clb_source(i, 1);
    net.conns.push_back(RouteConn{rrg.clb_sink(5 - i, 4), 1});
    problem.nets.push_back(net);
  }
  const RouteResult r1 = route(rrg, problem);
  const RouteResult r2 = route(rrg, problem);
  ASSERT_EQ(r1.conns.size(), r2.conns.size());
  for (std::size_t i = 0; i < r1.conns.size(); ++i) {
    EXPECT_EQ(r1.conns[i].nodes, r2.conns[i].nodes);
  }
}

TEST(Router, SplitEscapeHatchKeepsLegality) {
  // A three-mode merged connection pins the same physical path (wires, pins)
  // in every mode; saturating a width-1 fabric with different per-mode cross
  // traffic makes that joint colouring unsatisfiable, so the router must use
  // the split-conflicted-connection escape hatch and realise the connection
  // as per-mode pieces.
  const int n = 4;
  const arch::RoutingGraph rrg(spec_with(n, 1));
  RouteProblem problem;
  problem.num_modes = 3;
  RouteNet merged;
  merged.name = "merged";
  merged.source_node = rrg.clb_source(1, 1);
  merged.conns.push_back(RouteConn{rrg.clb_sink(n, n), 0b111});
  problem.nets.push_back(merged);
  for (int m = 0; m < 3; ++m) {
    for (int y = 2; y <= n; ++y) {
      RouteNet h;
      h.name = "h" + std::to_string(m) + "_" + std::to_string(y);
      h.source_node = rrg.clb_source(2, y);
      h.conns.push_back(RouteConn{rrg.clb_sink(n, (y % n) + 1),
                                  static_cast<ModeMask>(1u << m)});
      problem.nets.push_back(h);
    }
  }

  RouterOptions options;
  options.split_conflicted_after = 4;
  const RouteResult result = route(rrg, problem, options);
  ASSERT_TRUE(result.success);

  // The merged connection was split: several pieces with disjoint sub-masks
  // whose union is the original activation set, each a complete path.
  std::vector<const RoutedConn*> pieces;
  for (const RoutedConn& rc : result.conns) {
    if (rc.net == 0) pieces.push_back(&rc);
  }
  ASSERT_GT(pieces.size(), 1u);
  ModeMask covered = 0;
  for (const RoutedConn* rc : pieces) {
    EXPECT_EQ(covered & rc->modes, 0u) << "overlapping sub-masks";
    covered |= rc->modes;
    ASSERT_FALSE(rc->nodes.empty());
    EXPECT_EQ(rc->nodes.front(), problem.nets[0].source_node);
    EXPECT_EQ(rc->nodes.back(), problem.nets[0].conns[0].sink_node);
  }
  EXPECT_EQ(covered, 0b111u);

  // Post-split legality, keyed by each RoutedConn's own (refined) mask: no
  // (node, mode) carries two different (net, driver) pairs.
  struct Claim {
    std::int32_t net = -1;
    std::int32_t edge = -1;
  };
  std::vector<Claim> claims(rrg.num_nodes() *
                            static_cast<std::size_t>(problem.num_modes));
  for (const RoutedConn& rc : result.conns) {
    ASSERT_EQ(rc.edges.size() + 1, rc.nodes.size());
    for (std::size_t i = 0; i < rc.nodes.size(); ++i) {
      if (rrg.node(rc.nodes[i]).kind == arch::RrKind::Sink) continue;
      const std::int32_t edge =
          i == 0 ? -1 : static_cast<std::int32_t>(rc.edges[i - 1]);
      for (int m = 0; m < problem.num_modes; ++m) {
        if (!(rc.modes >> m & 1)) continue;
        Claim& c = claims[static_cast<std::size_t>(rc.nodes[i]) *
                              problem.num_modes + m];
        if (c.net == -1) {
          c.net = static_cast<std::int32_t>(rc.net);
          c.edge = edge;
        } else {
          EXPECT_EQ(c.net, static_cast<std::int32_t>(rc.net))
              << "two nets on node " << rc.nodes[i] << " in mode " << m;
          EXPECT_EQ(c.edge, edge) << "two drivers on node " << rc.nodes[i];
        }
      }
    }
  }

  // per_mode_states must agree exactly with the drivers reconstructed from
  // the (split) connections: in every mode, each node is driven by the edge
  // of the piece active there, and untouched nodes stay undriven.
  const auto states = result.per_mode_states(rrg, problem);
  ASSERT_EQ(states.size(), 3u);
  for (int m = 0; m < problem.num_modes; ++m) {
    std::vector<std::int32_t> expected(rrg.num_nodes(), -1);
    for (const RoutedConn& rc : result.conns) {
      if (!(rc.modes >> m & 1)) continue;
      for (std::size_t i = 0; i + 1 < rc.nodes.size(); ++i) {
        expected[rc.nodes[i + 1]] = static_cast<std::int32_t>(rc.edges[i]);
      }
    }
    for (std::uint32_t node = 0; node < rrg.num_nodes(); ++node) {
      ASSERT_EQ(states[static_cast<std::size_t>(m)].driver(node),
                expected[node])
          << "driver mismatch at node " << node << " in mode " << m;
    }
  }
}

TEST(MinChannelWidth, FindsMinimum) {
  arch::ArchSpec spec = spec_with(3, 1);
  // A crossing pattern needing a couple of tracks.
  auto make_problem = [](const arch::RoutingGraph& rrg) {
    RouteProblem problem;
    for (int i = 1; i <= 3; ++i) {
      RouteNet net;
      net.name = "n" + std::to_string(i);
      net.source_node = rrg.clb_source(i, 1);
      net.conns.push_back(RouteConn{rrg.clb_sink(4 - i, 3), 1});
      problem.nets.push_back(net);
    }
    return problem;
  };
  const int wmin = min_channel_width(spec, make_problem);
  EXPECT_GE(wmin, 1);
  EXPECT_LE(wmin, 8);
  // Verify minimality: wmin routes, wmin-1 does not (when wmin > 1).
  spec.channel_width = wmin;
  {
    const arch::RoutingGraph rrg(spec);
    EXPECT_TRUE(route(rrg, make_problem(rrg)).success);
  }
  if (wmin > 1) {
    spec.channel_width = wmin - 1;
    const arch::RoutingGraph rrg(spec);
    EXPECT_FALSE(route(rrg, make_problem(rrg)).success);
  }
}

}  // namespace
}  // namespace mmflow::route
